//! The warm sample cache: an LRU of pre-encoded null-model samples.
//!
//! Entries are keyed by `(graph fingerprint, canonical chain slug,
//! supersteps)` — exactly the triple that determines a one-shot sample, since
//! the sample seed is *derived deterministically from the key* (see
//! [`derive_sample_seed`]).  That determinism is the cache's core invariant:
//! any two computations of the same key produce bit-identical bytes, so a
//! cache hit is indistinguishable from a recomputation and entries can be
//! replenished in the background (by the engine
//! [`ServicePool`](gesmc_engine::ServicePool)) without readers ever observing
//! a changed payload.
//!
//! Both encodings of a sample (plain text and the binary edge list) are
//! stored behind `Arc`s, so a hit is one map lookup plus two atomic
//! increments — no copying, no re-encoding.

use gesmc_obs::Histogram;
use gesmc_randx::{fnv1a_64, mix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The triple identifying one cacheable sample.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the input graph (or of its canonical generator spec).
    pub fingerprint: u64,
    /// Canonical slug of the chain spec ([`ChainSpec::slug`](gesmc_core::ChainSpec::slug)).
    pub chain_slug: String,
    /// Number of supersteps the sample is taken after.
    pub supersteps: u64,
}

/// Derive the deterministic sample seed for a cache key: a splitmix64
/// finalisation of the key's three components (the chain slug enters via
/// FNV-1a).  Equal keys ⇒ equal seeds ⇒ bit-identical samples.
pub fn derive_sample_seed(key: &CacheKey) -> u64 {
    let slug_hash = fnv1a_64(key.chain_slug.as_bytes());
    mix64(key.fingerprint ^ mix64(slug_hash) ^ mix64(key.supersteps))
}

/// One cached sample, pre-encoded in both response formats.
#[derive(Debug, Clone)]
pub struct CachedSample {
    /// Plain-text edge-list encoding.
    pub text: Arc<Vec<u8>>,
    /// Binary edge-list encoding (`GESMCEL1`).
    pub binary: Arc<Vec<u8>>,
    /// The derived seed the sample was generated with.
    pub seed: u64,
}

struct Entry {
    sample: CachedSample,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A bounded LRU of [`CachedSample`]s with lock-free hit/miss counters.
///
/// Capacity 0 disables the cache (every `get` misses, `insert` is a no-op).
/// Eviction scans for the least-recently-used entry on insert — linear in
/// the entry count, which is bounded by the configured capacity (hundreds,
/// not millions), keeping the implementation free of unsafe intrusive
/// lists.
pub struct SampleCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    // Registry handles cached here so the hot path never takes the registry
    // lock; all caches in a process share the same global series.
    probe_hit: Arc<Histogram>,
    probe_miss: Arc<Histogram>,
}

/// A snapshot of the cache counters: hits, misses, evictions, entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by inserts at capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl SampleCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        const PROBE_HELP: &str = "Wall time of one warm-cache lookup, by outcome.";
        Self {
            capacity,
            inner: Mutex::new(CacheInner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            probe_hit: gesmc_obs::histogram_with(
                "gesmc_cache_probe_duration_seconds",
                PROBE_HELP,
                &[("result", "hit")],
            ),
            probe_miss: gesmc_obs::histogram_with(
                "gesmc_cache_probe_duration_seconds",
                PROBE_HELP,
                &[("result", "miss")],
            ),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedSample> {
        let probe_start = Instant::now();
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.probe_miss.observe(probe_start.elapsed());
            return None;
        }
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.probe_hit.observe(probe_start.elapsed());
                Some(entry.sample.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.probe_miss.observe(probe_start.elapsed());
                None
            }
        }
    }

    /// Insert (or overwrite) `key`, evicting the least-recently-used entry
    /// when at capacity.  Overwrites are idempotent by construction: the
    /// deterministic seed means any writer of a key carries the same bytes.
    pub fn insert(&self, key: CacheKey, sample: CachedSample) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(lru) =
                inner.map.iter().min_by_key(|(_, entry)| entry.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, Entry { sample, last_used: tick });
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache mutex poisoned").map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey { fingerprint: i, chain_slug: "seq-es".to_string(), supersteps: 10 }
    }

    fn sample(tag: u8) -> CachedSample {
        CachedSample {
            text: Arc::new(vec![tag]),
            binary: Arc::new(vec![tag, tag]),
            seed: u64::from(tag),
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = SampleCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), sample(7));
        let got = cache.get(&key(1)).unwrap();
        assert_eq!(*got.text, vec![7]);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0, entries: 1 });
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = SampleCache::new(2);
        cache.insert(key(1), sample(1));
        cache.insert(key(2), sample(2));
        // Touch 1 so 2 becomes the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), sample(3));
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn overwriting_a_resident_key_does_not_evict_others() {
        let cache = SampleCache::new(2);
        cache.insert(key(1), sample(1));
        cache.insert(key(2), sample(2));
        cache.insert(key(1), sample(1));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = SampleCache::new(0);
        cache.insert(key(1), sample(1));
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn derived_seeds_are_deterministic_and_key_sensitive() {
        let base = key(42);
        assert_eq!(derive_sample_seed(&base), derive_sample_seed(&base.clone()));
        let other_graph = key(43);
        assert_ne!(derive_sample_seed(&base), derive_sample_seed(&other_graph));
        let other_chain = CacheKey { chain_slug: "par-global-es".to_string(), ..base.clone() };
        assert_ne!(derive_sample_seed(&base), derive_sample_seed(&other_chain));
        let other_steps = CacheKey { supersteps: 11, ..base.clone() };
        assert_ne!(derive_sample_seed(&base), derive_sample_seed(&other_steps));
    }
}
