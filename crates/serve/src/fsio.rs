//! The injectable filesystem seam under the persistence layer.
//!
//! Every durable byte [`persist`](crate::persist) writes goes through a
//! [`PersistIo`] — plain `std::fs` in production ([`StdFs`]), a scripted
//! fault injector in tests ([`FaultIo`]).  The seam covers exactly the
//! operations whose failure modes matter for the durability contract:
//! `write` (create/truncate), `append`, `fsync`, and `rename`.  Tests fail
//! any of them deterministically and assert the store degrades instead of
//! panicking or acknowledging work it then loses.

use std::io;
use std::path::Path;
use std::sync::Mutex;

/// The persistence operations a [`PersistIo`] mediates (and a [`FaultIo`]
/// can fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Create-or-truncate write of a whole file.
    Write,
    /// Append to the end of a file (created if absent).
    Append,
    /// Flush a file's data and metadata to stable storage.
    Fsync,
    /// Atomic rename within one directory.
    Rename,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            IoOp::Write => "write",
            IoOp::Append => "append",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
        };
        f.write_str(name)
    }
}

/// Filesystem operations of the persistence layer, as an injectable seam.
///
/// Implementations must be usable from many threads at once (journal
/// appends, sample spills, and checkpoint writes race).
pub trait PersistIo: Send + Sync + std::fmt::Debug {
    /// Create (or truncate) `path` and write `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append `bytes` to `path`, creating it if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush `path` (a file or a directory) to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// The production [`PersistIo`]: straight `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl PersistIo for StdFs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        // Opening read-only suffices for fsync on both files and directories
        // (Linux allows O_RDONLY + fsync on directories).
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// One scripted fault: fail the next `remaining` occurrences of `op` on
/// paths containing `path_contains`.
#[derive(Debug)]
struct Fault {
    op: IoOp,
    path_contains: String,
    remaining: usize,
}

/// A [`PersistIo`] wrapping [`StdFs`] with a scripted fault plan.
///
/// `fail(op, substr, times)` arms a fault; the next `times` calls of `op`
/// whose path contains `substr` return an injected `io::Error` (and perform
/// no filesystem work).  Unmatched calls pass through.  Tests use this to
/// fail any single persistence step deterministically.
#[derive(Debug, Default)]
pub struct FaultIo {
    inner: StdFs,
    plan: Mutex<Vec<Fault>>,
}

impl FaultIo {
    /// A fault injector with an empty plan (all calls pass through).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a fault: the next `times` `op` calls on paths containing
    /// `path_contains` fail with an injected error.
    pub fn fail(&self, op: IoOp, path_contains: &str, times: usize) {
        self.plan.lock().expect("fault plan mutex poisoned").push(Fault {
            op,
            path_contains: path_contains.to_string(),
            remaining: times,
        });
    }

    /// Disarm every scripted fault.
    pub fn clear(&self) {
        self.plan.lock().expect("fault plan mutex poisoned").clear();
    }

    fn check(&self, op: IoOp, path: &Path) -> io::Result<()> {
        let mut plan = self.plan.lock().expect("fault plan mutex poisoned");
        let text = path.to_string_lossy();
        for fault in plan.iter_mut() {
            if fault.op == op && fault.remaining > 0 && text.contains(&fault.path_contains) {
                fault.remaining -= 1;
                return Err(io::Error::other(format!("injected {op} fault on {}", path.display())));
            }
        }
        Ok(())
    }
}

impl PersistIo for FaultIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check(IoOp::Write, path)?;
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check(IoOp::Append, path)?;
        self.inner.append(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.check(IoOp::Fsync, path)?;
        self.inner.fsync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(IoOp::Rename, to)?;
        self.inner.rename(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_fs_roundtrips_and_appends() {
        let dir = std::env::temp_dir().join("gesmc-fsio-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let io = StdFs;
        let file = dir.join("a.bin");
        io.write(&file, b"hello").unwrap();
        io.append(&file, b" world").unwrap();
        io.fsync(&file).unwrap();
        assert_eq!(std::fs::read(&file).unwrap(), b"hello world");
        let renamed = dir.join("b.bin");
        io.rename(&file, &renamed).unwrap();
        assert!(!file.exists());
        assert_eq!(std::fs::read(&renamed).unwrap(), b"hello world");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_fire_by_op_and_path_then_expire() {
        let dir = std::env::temp_dir().join("gesmc-fsio-fault-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new();
        io.fail(IoOp::Append, "journal", 2);
        let journal = dir.join("jobs.journal");
        let other = dir.join("other.bin");
        // Unmatched op and unmatched path both pass through.
        io.write(&journal, b"x").unwrap();
        io.append(&other, b"y").unwrap();
        // Matched calls fail exactly `times` times, then pass.
        assert!(io.append(&journal, b"z").is_err());
        assert!(io.append(&journal, b"z").is_err());
        io.append(&journal, b"z").unwrap();
        // Rename faults match on the destination path.
        io.fail(IoOp::Rename, "final", 1);
        io.write(&other, b"v").unwrap();
        assert!(io.rename(&other, &dir.join("final.bin")).is_err());
        assert!(other.exists(), "failed rename must not move the file");
        io.clear();
        io.rename(&other, &dir.join("final.bin")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
