//! The server runtime: listener, HTTP worker threads, shared state, and the
//! graceful-shutdown choreography.
//!
//! ## Data flow
//!
//! ```text
//! accept loop ── bounded conn queue ── HTTP workers ── router
//!                                                        │
//!                     warm cache ◄── hit ────────────────┤
//!                         ▲                              │ miss / job
//!                         └── insert ── ServicePool ◄────┘
//!                                       (bounded admission, 429 beyond)
//! ```
//!
//! Shutdown (via [`Server::shutdown`] or `POST /v1/shutdown`) runs in
//! strict order: stop accepting connections, drain the connection queue and
//! join the HTTP workers (in-flight requests finish and their responses are
//! written), then drain the engine pool (in-flight jobs finish, new
//! submissions were already rejected) and join its workers.  Nothing is
//! aborted mid-request and no sample is lost.

use crate::cache::{CacheKey, CachedSample, SampleCache};
use crate::cluster::ClusterState;
use crate::fsio::StdFs;
use crate::http::{read_request, Response};
use crate::jobstore::JobStore;
use crate::metrics::Metrics;
use crate::persist::{boot_replay, Persistence};
use crate::router::route;
use crate::ServeConfig;
use gesmc_engine::{default_registry, ChainRegistry, ServicePool};
use gesmc_obs::Histogram;
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection socket timeout: a stalled peer cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);
/// Bound of the parsed-connection queue, per HTTP worker.
const CONN_QUEUE_PER_WORKER: usize = 32;

/// Why a cold `/v1/sample` computation did not produce a sample.  Shared
/// with coalesced waiters, hence `Clone`.
#[derive(Debug, Clone)]
pub(crate) enum ColdError {
    /// The admission queue was full; shed with 429.
    Saturated,
    /// The server is shutting down; 503.
    ShuttingDown,
    /// The job failed; 500 with the engine's message.
    Failed(String),
}

impl ColdError {
    pub(crate) fn into_response(self) -> Response {
        match self {
            ColdError::Saturated => Response::error(429, "admission queue is full; retry later")
                .with_header("Retry-After", "1"),
            ColdError::ShuttingDown => Response::error(503, "server is shutting down"),
            ColdError::Failed(msg) => Response::error(500, &format!("sampling job failed: {msg}")),
        }
    }
}

/// The slot coalesced cold requests rendezvous on: the leader publishes the
/// outcome, followers block on it instead of submitting duplicate jobs.
pub(crate) struct InflightSlot {
    result: Mutex<Option<Result<CachedSample, ColdError>>>,
    ready: Condvar,
}

impl InflightSlot {
    fn new() -> Self {
        Self { result: Mutex::new(None), ready: Condvar::new() }
    }

    pub(crate) fn wait(&self) -> Result<CachedSample, ColdError> {
        let coalesce_hist = gesmc_obs::histogram(
            "gesmc_coalesce_wait_duration_seconds",
            "Time coalesced followers spent waiting on the leader's sample.",
        );
        let _timer = gesmc_obs::Timer::start(&coalesce_hist);
        let mut result = self.result.lock().expect("inflight mutex poisoned");
        while result.is_none() {
            result = self.ready.wait(result).expect("inflight mutex poisoned");
        }
        result.clone().expect("checked above")
    }

    fn publish(&self, outcome: Result<CachedSample, ColdError>) {
        *self.result.lock().expect("inflight mutex poisoned") = Some(outcome);
        self.ready.notify_all();
    }
}

/// Leader/follower outcome of claiming a cold key.
pub(crate) enum Lease {
    /// This request computes the sample and publishes it.
    Leader(Arc<InflightSlot>),
    /// Another request is already computing it; wait on the slot.
    Follower(Arc<InflightSlot>),
}

/// RAII companion of a leader lease: if the leader unwinds before
/// publishing (a panic anywhere in the compute path), the drop handler
/// publishes a failure and retires the slot, so followers are never
/// stranded in [`InflightSlot::wait`].
pub(crate) struct LeaseGuard<'a> {
    state: &'a ServerState,
    key: &'a CacheKey,
    slot: Arc<InflightSlot>,
    released: bool,
}

impl<'a> LeaseGuard<'a> {
    pub(crate) fn new(state: &'a ServerState, key: &'a CacheKey, slot: Arc<InflightSlot>) -> Self {
        Self { state, key, slot, released: false }
    }

    /// Publish the leader's outcome and retire the slot.
    pub(crate) fn release(mut self, outcome: Result<CachedSample, ColdError>) {
        self.state.release_inflight(self.key, &self.slot, outcome);
        self.released = true;
    }
}

impl Drop for LeaseGuard<'_> {
    fn drop(&mut self) {
        if !self.released {
            self.state.release_inflight(
                self.key,
                &self.slot,
                Err(ColdError::Failed("sample computation panicked".to_string())),
            );
        }
    }
}

/// Cached handles of the `gesmc_request_phase_duration_seconds` family, one
/// series per pipeline phase, so the per-request hot path never takes the
/// obs registry lock.
pub(crate) struct PhaseHists {
    pub(crate) queue_wait: Arc<Histogram>,
    pub(crate) read: Arc<Histogram>,
    pub(crate) handle: Arc<Histogram>,
    pub(crate) write: Arc<Histogram>,
    pub(crate) compute: Arc<Histogram>,
}

impl PhaseHists {
    fn new() -> Self {
        const HELP: &str = "Wall time of each HTTP request pipeline phase.";
        let phase = |name| {
            gesmc_obs::histogram_with(
                "gesmc_request_phase_duration_seconds",
                HELP,
                &[("phase", name)],
            )
        };
        Self {
            queue_wait: phase("queue_wait"),
            read: phase("read"),
            handle: phase("handle"),
            write: phase("write"),
            compute: phase("compute"),
        }
    }
}

/// Everything the handlers share.
pub(crate) struct ServerState {
    pub(crate) config: ServeConfig,
    pub(crate) registry: &'static ChainRegistry,
    pub(crate) pool: ServicePool,
    pub(crate) cache: SampleCache,
    pub(crate) jobs: JobStore,
    pub(crate) metrics: Metrics,
    /// Per-phase request latency histograms (obs registry handles).
    pub(crate) phases: PhaseHists,
    /// The durability layer; `Some` only when the config sets a data dir.
    pub(crate) persist: Option<Arc<Persistence>>,
    /// Ring, peer health, and forwarding; `Some` only with `--peers`.
    pub(crate) cluster: Option<ClusterState>,
    /// Reaper threads journaling `finished` events for persistent jobs;
    /// joined during teardown (after the pool drained, so all terminal).
    pub(crate) reapers: Mutex<Vec<JoinHandle<()>>>,
    inflight: Mutex<HashMap<CacheKey, Arc<InflightSlot>>>,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    stopping: AtomicBool,
    /// Accepted connections with their enqueue instants (the queue-wait
    /// phase measures the pop-side delta).
    conns: Mutex<VecDeque<(TcpStream, Instant)>>,
    conn_available: Condvar,
}

impl ServerState {
    /// Claim the in-flight slot for `key`: the first claimant leads, later
    /// ones follow.
    pub(crate) fn lease_inflight(&self, key: &CacheKey) -> Lease {
        let mut inflight = self.inflight.lock().expect("inflight map mutex poisoned");
        match inflight.get(key) {
            Some(slot) => Lease::Follower(Arc::clone(slot)),
            None => {
                let slot = Arc::new(InflightSlot::new());
                inflight.insert(key.clone(), Arc::clone(&slot));
                Lease::Leader(slot)
            }
        }
    }

    /// Publish the leader's outcome and retire the slot.
    pub(crate) fn release_inflight(
        &self,
        key: &CacheKey,
        slot: &InflightSlot,
        outcome: Result<CachedSample, ColdError>,
    ) {
        self.inflight.lock().expect("inflight map mutex poisoned").remove(key);
        slot.publish(outcome);
    }

    /// Flag a graceful shutdown (idempotent); [`Server::wait`] observes it.
    pub(crate) fn request_shutdown(&self) {
        *self.shutdown_requested.lock().expect("shutdown mutex poisoned") = true;
        self.shutdown_cv.notify_all();
    }
}

/// The running server: a listener plus its worker threads.
///
/// Constructed by [`Server::bind`]; stopped by [`Server::shutdown`] (or by a
/// `POST /v1/shutdown` when enabled, observed through [`Server::wait`]).
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    http_workers: Mutex<Vec<JoinHandle<()>>>,
    torn_down: Mutex<bool>,
}

impl Server {
    /// Bind `config.addr`, spawn the acceptor and HTTP workers, and start
    /// the engine pool.  Returns as soon as the socket listens; use
    /// [`Server::local_addr`] for the resolved address (ephemeral ports).
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        // Non-blocking accept: the acceptor polls the stop flag between
        // attempts, so shutdown never depends on being able to connect to
        // our own address to unblock a blocking accept().
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let persist = match &config.data_dir {
            Some(dir) => {
                let io = config.persist_io.clone().unwrap_or_else(|| Arc::new(StdFs));
                Some(Arc::new(Persistence::open(dir.clone(), io)?))
            }
            None => None,
        };

        let cluster = match &config.cluster {
            Some(cluster_config) => Some(ClusterState::new(cluster_config).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("cluster: {e}"))
            })?),
            None => None,
        };

        // Trace spans carry a per-process service label so joined
        // cross-process trees attribute each span to its node.
        let service = match &cluster {
            Some(cluster) => cluster.advertise().to_string(),
            None => addr.to_string(),
        };
        gesmc_obs::trace::tracer().set_service(service);

        let state = Arc::new(ServerState {
            pool: ServicePool::start(config.engine_workers, config.max_pending),
            cache: SampleCache::new(config.cache_entries),
            jobs: JobStore::new(config.max_jobs),
            metrics: Metrics::new(),
            phases: PhaseHists::new(),
            registry: default_registry(),
            persist,
            cluster,
            reapers: Mutex::new(Vec::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conn_available: Condvar::new(),
            config,
        });

        // Recover before the socket serves traffic: restore finished job
        // records, resume interrupted jobs, compact the journal.
        boot_replay(&state);

        let http_workers = (0..state.config.http_workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || http_worker(&state))
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &state))
        };

        Ok(Self {
            state,
            addr,
            acceptor: Mutex::new(Some(acceptor)),
            http_workers: Mutex::new(http_workers),
            torn_down: Mutex::new(false),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a shutdown is requested (by [`Server::shutdown`] or a
    /// `POST /v1/shutdown`), then tear the server down gracefully.
    /// Idempotent across threads; every caller returns once teardown
    /// finished.
    pub fn wait(&self) {
        {
            let mut requested =
                self.state.shutdown_requested.lock().expect("shutdown mutex poisoned");
            while !*requested {
                requested =
                    self.state.shutdown_cv.wait(requested).expect("shutdown mutex poisoned");
            }
        }
        self.teardown();
    }

    /// Request a graceful shutdown and block until it completed: no new
    /// connections, in-flight requests answered, accepted jobs drained,
    /// every thread joined.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
        self.teardown();
    }

    fn teardown(&self) {
        let mut done = self.torn_down.lock().expect("teardown mutex poisoned");
        if *done {
            return;
        }
        self.state.stopping.store(true, Ordering::Release);
        // The acceptor polls a non-blocking listener, so it observes the
        // flag within one poll interval — no self-connect needed.
        if let Some(acceptor) = self.acceptor.lock().expect("acceptor mutex poisoned").take() {
            let _ = acceptor.join();
        }
        // HTTP workers finish queued connections, then exit; jobs their
        // requests wait on still execute because the pool drains last.
        // Notify under the queue mutex: a worker between its stop-flag check
        // and its wait holds that mutex, so the wakeup cannot be lost.
        {
            let _conns = self.state.conns.lock().expect("conn queue mutex poisoned");
            self.state.conn_available.notify_all();
        }
        let workers =
            std::mem::take(&mut *self.http_workers.lock().expect("worker handles mutex poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
        self.state.pool.shutdown();
        // The pool drained, so every job is terminal and every reaper is
        // about to (or already did) journal its `finished` event.
        let reapers =
            std::mem::take(&mut *self.state.reapers.lock().expect("reaper handles mutex poisoned"));
        for reaper in reapers {
            let _ = reaper.join();
        }
        *done = true;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.state.request_shutdown();
        self.teardown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let conn_bound = state.config.http_workers.max(1) * CONN_QUEUE_PER_WORKER;
    loop {
        if state.stopping.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets inherit the listener's non-blocking flag
                // on some platforms; the workers want blocking reads.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                stream
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle: poll the stop flag at a coarse interval.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) must not
                // busy-spin a core; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if state.stopping.load(Ordering::Acquire) {
            return;
        }
        let enqueued = {
            let mut conns = state.conns.lock().expect("conn queue mutex poisoned");
            if conns.len() >= conn_bound {
                Err(stream)
            } else {
                conns.push_back((stream, Instant::now()));
                Ok(())
            }
        };
        match enqueued {
            Ok(()) => state.conn_available.notify_one(),
            Err(mut stream) => {
                // Shed at the connection level too: answer 429 inline
                // without occupying a worker.
                state.metrics.count_response(429);
                let request_id = gesmc_obs::next_request_id();
                gesmc_obs::warn!(
                    target: "gesmc_serve::http",
                    id: request_id,
                    "connection queue full ({conn_bound}); shedding with 429"
                );
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = Response::error(429, "connection queue is full; retry later")
                    .with_header("Retry-After", "1")
                    .with_header("X-Gesmc-Request-Id", request_id)
                    .write_to(&mut stream);
            }
        }
    }
}

fn http_worker(state: &Arc<ServerState>) {
    loop {
        let stream = {
            let mut conns = state.conns.lock().expect("conn queue mutex poisoned");
            loop {
                if let Some(stream) = conns.pop_front() {
                    break Some(stream);
                }
                if state.stopping.load(Ordering::Acquire) {
                    break None;
                }
                conns = state.conn_available.wait(conns).expect("conn queue mutex poisoned");
            }
        };
        let Some((mut stream, queued_at)) = stream else {
            state.conn_available.notify_all();
            return;
        };
        let queue_wait = queued_at.elapsed();
        state.phases.queue_wait.observe(queue_wait);
        let request_id = gesmc_obs::next_request_id();
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        let Ok(read_half) = stream.try_clone() else { continue };
        let mut reader = BufReader::new(read_half);
        let read_start = Instant::now();
        let parsed = read_request(&mut reader, state.config.max_body_bytes);
        let read_elapsed = read_start.elapsed();
        state.phases.read.observe(read_elapsed);
        let (response, request_line, span) = match parsed {
            Ok(request) => {
                state.metrics.count_request();
                let line = format!("{} {}", request.method.as_str(), request.path);
                // Every parsed request gets a root span; the tail sampler
                // decides at the end whether the trace is kept.  An inbound
                // `X-Gesmc-Trace` joins the sender's trace instead.
                let tracer = gesmc_obs::trace::tracer();
                let mut span =
                    match request.header("x-gesmc-trace").and_then(gesmc_obs::SpanContext::parse) {
                        Some(ctx) => tracer.continue_trace(ctx, "request"),
                        None => tracer.start_root("request"),
                    };
                span.annotate("method", request.method.as_str());
                span.annotate("path", request.path.clone());
                span.annotate("request_id", request_id.clone());
                // The queue and read phases happened before the header was
                // known; attach them retroactively.
                span.record_completed_child("queue_wait", read_elapsed, queue_wait);
                span.record_completed_child("read", Duration::ZERO, read_elapsed);
                // A panicking handler must cost one response, not a worker
                // thread: answer 500 and keep serving.  (LeaseGuard already
                // unstranded any followers of a panicked leader.)
                let handle_start = Instant::now();
                let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(state, &request, &request_id, &mut span)
                }));
                state.phases.handle.observe(handle_start.elapsed());
                let response = match handled {
                    Ok(response) => response,
                    Err(_) => {
                        span.set_error();
                        Response::error(500, "internal error: request handler panicked")
                    }
                };
                (response, line, Some(span))
            }
            Err(error) => match error.into_response() {
                Some(response) => (response, "<unparsed request>".to_string(), None),
                None => continue, // peer went away; nothing to answer
            },
        };
        state.metrics.count_response(response.status);
        let mut response = response.with_header("X-Gesmc-Request-Id", request_id.as_str());
        if let Some(span) = &span {
            response = response.with_header("X-Gesmc-Trace-Id", span.trace_id().to_hex().as_str());
        }
        let write_start = Instant::now();
        let _ = response.write_to(&mut stream);
        let write_elapsed = write_start.elapsed();
        state.phases.write.observe(write_elapsed);
        if let Some(mut span) = span {
            span.record_completed_child("write", Duration::ZERO, write_elapsed);
            if response.status >= 500 {
                span.set_error();
            }
            span.annotate("status", response.status.to_string());
            drop(span); // local root: the tail decision runs here
        }
        gesmc_obs::info!(
            target: "gesmc_serve::http",
            id: request_id,
            "{request_line} -> {} ({} B in {:.1} ms)",
            response.status,
            response.body().len(),
            read_start.elapsed().as_secs_f64() * 1e3
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 2,
            engine_workers: 1,
            allow_shutdown: true,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthz_and_graceful_shutdown() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        server.shutdown();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
            "socket must be closed after shutdown"
        );
    }

    #[test]
    fn unknown_routes_and_bad_requests_get_clean_errors() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/nope").0, 404);
        // A malformed request line gets a 400, not a dropped connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "garbage\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn wait_returns_after_remote_shutdown_request() {
        let server = Arc::new(Server::bind(test_config()).unwrap());
        let addr = server.local_addr();
        let waiter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.wait())
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /v1/shutdown HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 202"), "{raw}");
        waiter.join().unwrap();
    }
}
