//! Cluster runtime: ring ownership, peer-to-peer forwarding, peer health.
//!
//! With `--peers`, every serve node builds the same consistent-hash ring
//! over the membership list.  A node receiving `GET /v1/sample` computes the
//! key's owner: itself → handle locally; a peer → forward the request over
//! the plain HTTP codec and relay the answer.  Forwarding is **one hop at
//! most** — a forwarded request carries `X-Gesmc-Forwarded: 1` and is always
//! handled locally by the receiver, so no routing disagreement (mid-restart
//! config skew, a bad peers file) can loop a request.
//!
//! Sample seeds derive from the cache key, so every node computes
//! bit-identical bytes for a key.  That makes forwarding a pure
//! cache-locality optimisation, and the failure policy trivial: when the
//! owner is unreachable (connect failure, 5xx, ejection), the receiving
//! node computes the sample itself.  Ejected peers are skipped for
//! [`HealthPolicy::probe_after_ms`] and then re-probed with one live
//! request.

use crate::cache::CacheKey;
use crate::http::{Request, Response};
use gesmc_cluster::{HashRing, HealthPolicy, HealthTracker, PeerStatus, SampleKey};
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The request header marking an already-forwarded request (the loop guard).
pub const FORWARDED_HEADER: &str = "x-gesmc-forwarded";

/// Connect budget for a peer hop; a peer that cannot accept within this is
/// treated as down and the sample is computed locally.
const FORWARD_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Read/write budget for a peer hop; covers a cold compute on the owner.
const FORWARD_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Static cluster membership (`--peers`/`--advertise`).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's own address, exactly as it appears in `peers`.
    pub advertise: String,
    /// Every cluster member, this node included.
    pub peers: Vec<String>,
}

/// Counters and health the `/metrics` renderer snapshots.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Cluster size (peers, this node included).
    pub peers: usize,
    /// `(peer, currently healthy)` for every remote peer.
    pub peer_health: Vec<(String, bool)>,
    /// Requests forwarded to their owner.
    pub forwarded: u64,
    /// Forwards that failed (or were skipped for an ejected owner) and fell
    /// back to local computation.
    pub fallbacks: u64,
    /// Forwarded requests received from peers (loop guard honoured).
    pub received: u64,
}

/// Per-node cluster state, shared by the router handlers.
#[derive(Debug)]
pub(crate) struct ClusterState {
    advertise: String,
    ring: HashRing,
    health: Mutex<HealthTracker>,
    epoch: Instant,
    forwarded: AtomicU64,
    fallbacks: AtomicU64,
    received: AtomicU64,
}

impl ClusterState {
    /// Validate the membership list and build the ring.
    pub(crate) fn new(config: &ClusterConfig) -> Result<Self, String> {
        let ring = HashRing::new(config.peers.clone()).map_err(|e| e.to_string())?;
        if !ring.nodes().contains(&config.advertise) {
            return Err(format!(
                "advertise address {:?} is not in the peers list {:?}",
                config.advertise,
                ring.nodes()
            ));
        }
        Ok(Self {
            advertise: config.advertise.clone(),
            ring,
            health: Mutex::new(HealthTracker::new(HealthPolicy::default())),
            epoch: Instant::now(),
            forwarded: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            received: AtomicU64::new(0),
        })
    }

    /// This node's address on the ring.
    pub(crate) fn advertise(&self) -> &str {
        &self.advertise
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The node owning `key`.
    pub(crate) fn owner_of(&self, key: &CacheKey) -> &str {
        let sample_key = SampleKey::new(key.fingerprint, key.chain_slug.clone(), key.supersteps);
        self.ring.owner(sample_key.ring_hash())
    }

    /// Note a forwarded request arriving from a peer (loop guard hit).
    pub(crate) fn note_received_forward(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Forward `request` (a `GET /v1/sample`) to `owner` and relay its
    /// answer.  `None` means the caller must handle the request locally —
    /// the owner is ejected, unreachable, or answered 5xx.  Any status
    /// below 500 is authoritative and relayed as-is (including 429: the
    /// owner's backpressure signal, `Retry-After` intact, reaches the
    /// client).
    pub(crate) fn forward(
        &self,
        owner: &str,
        request: &Request,
        request_id: &str,
        trace: Option<&str>,
    ) -> Option<Response> {
        {
            let mut health = self.health.lock().expect("cluster health mutex poisoned");
            if !health.is_available(owner, self.now_ms()) {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                gesmc_obs::info!(
                    target: "gesmc_serve::cluster",
                    id: request_id,
                    "owner {owner} is ejected; computing locally"
                );
                return None;
            }
        }
        let path = rebuild_target(request);
        let accept = request.header("accept").unwrap_or("text/plain");
        let mut headers = vec![("Accept", accept), ("X-Gesmc-Forwarded", "1")];
        if let Some(trace) = trace {
            headers.push(("X-Gesmc-Trace", trace));
        }
        let outcome = gesmc_cluster::request_with_timeouts(
            owner,
            "GET",
            &path,
            &headers,
            &[],
            FORWARD_CONNECT_TIMEOUT,
            FORWARD_IO_TIMEOUT,
        );
        let mut health = self.health.lock().expect("cluster health mutex poisoned");
        match outcome {
            Ok(wire) if wire.status < 500 => {
                health.record_success(owner);
                self.forwarded.fetch_add(1, Ordering::Relaxed);
                let content_type = wire.header("content-type").unwrap_or("text/plain").to_string();
                let relayed: Vec<(&'static str, String)> =
                    ["x-gesmc-cache", "x-gesmc-seed", "retry-after"]
                        .into_iter()
                        .filter_map(|name| {
                            wire.header(name)
                                .map(|value| (canonical_header(name), value.to_string()))
                        })
                        .collect();
                let mut response = Response::binary(wire.status, wire.body)
                    .with_content_type(&content_type)
                    .with_header("X-Gesmc-Forwarded-By", self.advertise.clone());
                for (name, value) in relayed {
                    response = response.with_header(name, value);
                }
                Some(response)
            }
            Ok(wire) => {
                let ejected = health.record_failure(owner, self.now_ms());
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                gesmc_obs::warn!(
                    target: "gesmc_serve::cluster",
                    id: request_id,
                    "owner {owner} answered {}; computing locally{}",
                    wire.status,
                    if ejected { " (peer ejected)" } else { "" }
                );
                None
            }
            Err(e) => {
                let ejected = health.record_failure(owner, self.now_ms());
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                gesmc_obs::warn!(
                    target: "gesmc_serve::cluster",
                    id: request_id,
                    "forward to {owner} failed ({e}); computing locally{}",
                    if ejected { " (peer ejected)" } else { "" }
                );
                None
            }
        }
    }

    /// Snapshot for `/metrics` and `GET /v1/cluster`.
    pub(crate) fn metrics(&self) -> ClusterMetrics {
        let now = self.now_ms();
        let health = self.health.lock().expect("cluster health mutex poisoned");
        let peer_health = self
            .ring
            .nodes()
            .iter()
            .filter(|n| **n != self.advertise)
            .map(|n| (n.clone(), matches!(health.status(n, now), PeerStatus::Healthy)))
            .collect();
        ClusterMetrics {
            peers: self.ring.len(),
            peer_health,
            forwarded: self.forwarded.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
        }
    }

    /// The `GET /v1/cluster` document.
    pub(crate) fn status_json(&self) -> Value {
        let snapshot = self.metrics();
        let mut map = Map::new();
        map.insert("enabled".to_string(), Value::Bool(true));
        map.insert("advertise".to_string(), Value::String(self.advertise.clone()));
        map.insert(
            "peers".to_string(),
            Value::Array(self.ring.nodes().iter().map(|n| Value::String(n.clone())).collect()),
        );
        map.insert(
            "vnodes_per_node".to_string(),
            Value::Number(self.ring.vnodes_per_node() as f64),
        );
        map.insert(
            "peer_health".to_string(),
            Value::Array(
                snapshot
                    .peer_health
                    .iter()
                    .map(|(peer, healthy)| {
                        let mut entry = Map::new();
                        entry.insert("peer".to_string(), Value::String(peer.clone()));
                        entry.insert(
                            "status".to_string(),
                            Value::String(if *healthy { "healthy" } else { "ejected" }.to_string()),
                        );
                        Value::Object(entry)
                    })
                    .collect(),
            ),
        );
        map.insert("forwarded".to_string(), Value::Number(snapshot.forwarded as f64));
        map.insert("forward_fallbacks".to_string(), Value::Number(snapshot.fallbacks as f64));
        map.insert("forwards_received".to_string(), Value::Number(snapshot.received as f64));
        Value::Object(map)
    }
}

/// The canonical (response) spelling of a relayed header name.
fn canonical_header(lower: &str) -> &'static str {
    match lower {
        "x-gesmc-cache" => "X-Gesmc-Cache",
        "x-gesmc-seed" => "X-Gesmc-Seed",
        "retry-after" => "Retry-After",
        _ => unreachable!("only known headers are relayed"),
    }
}

/// Re-encode a parsed request back into a wire target.  The parser decoded
/// the query pairs, so the decoder's special bytes (`%`, `&`, `+`, space)
/// must be re-escaped.
fn rebuild_target(request: &Request) -> String {
    let mut target = request.path.clone();
    for (i, (key, value)) in request.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(&encode_component(key));
        target.push('=');
        target.push_str(&encode_component(value));
    }
    target
}

fn encode_component(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '&' => out.push_str("%26"),
            '+' => out.push_str("%2B"),
            ' ' => out.push_str("%20"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn config(advertise: &str) -> ClusterConfig {
        ClusterConfig {
            advertise: advertise.to_string(),
            peers: vec!["n1:1".to_string(), "n2:1".to_string(), "n3:1".to_string()],
        }
    }

    #[test]
    fn membership_is_validated() {
        assert!(ClusterState::new(&config("n2:1")).is_ok());
        let err = ClusterState::new(&config("elsewhere:1")).unwrap_err();
        assert!(err.contains("not in the peers list"), "{err}");
        let err = ClusterState::new(&ClusterConfig {
            advertise: "n1:1".to_string(),
            peers: vec!["n1:1".to_string(), "n1:1".to_string()],
        })
        .unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn ownership_matches_the_shared_ring() {
        let state = ClusterState::new(&config("n1:1")).unwrap();
        let key = CacheKey {
            fingerprint: 0xfeed,
            chain_slug: "par-global-es".to_string(),
            supersteps: 20,
        };
        let expected_ring = HashRing::new(["n1:1", "n2:1", "n3:1"]).unwrap();
        let hash = SampleKey::new(0xfeed, "par-global-es", 20).ring_hash();
        assert_eq!(state.owner_of(&key), expected_ring.owner(hash));
    }

    #[test]
    fn targets_rebuild_with_reescaped_components() {
        let request = Request {
            method: Method::Get,
            path: "/v1/sample".to_string(),
            query: vec![
                ("graph".to_string(), "pld:m=100".to_string()),
                ("algo".to_string(), "par-global-es?pl=0.5&threads=2".to_string()),
            ],
            headers: vec![],
            body: vec![],
        };
        assert_eq!(
            rebuild_target(&request),
            "/v1/sample?graph=pld:m=100&algo=par-global-es?pl=0.5%26threads=2"
        );
        let bare = Request {
            method: Method::Get,
            path: "/healthz".to_string(),
            query: vec![],
            headers: vec![],
            body: vec![],
        };
        assert_eq!(rebuild_target(&bare), "/healthz");
    }

    #[test]
    fn forwarding_to_a_dead_owner_falls_back_and_ejects_after_repeats() {
        // A bound-then-dropped port: connect is refused fast.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let state = ClusterState::new(&ClusterConfig {
            advertise: "self:1".to_string(),
            peers: vec!["self:1".to_string(), dead.clone()],
        })
        .unwrap();
        let request = Request {
            method: Method::Get,
            path: "/v1/sample".to_string(),
            query: vec![("graph".to_string(), "pld:m=100".to_string())],
            headers: vec![],
            body: vec![],
        };
        let policy = HealthPolicy::default();
        for attempt in 0..policy.eject_after {
            assert!(
                state.forward(&dead, &request, "req-test", None).is_none(),
                "attempt {attempt}"
            );
        }
        let snapshot = state.metrics();
        assert_eq!(snapshot.fallbacks, u64::from(policy.eject_after));
        assert_eq!(snapshot.forwarded, 0);
        assert_eq!(snapshot.peer_health, vec![(dead.clone(), false)]);
        // Ejected now: the next forward is skipped without touching the wire.
        assert!(state.forward(&dead, &request, "req-test", None).is_none());
        let json = serde_json::to_string(&state.status_json()).unwrap();
        assert!(json.contains("\"ejected\""), "{json}");
    }
}
