//! The durability layer behind `--data-dir`: a write-ahead job journal,
//! checkpointed in-flight jobs, and a spill-to-disk sample cache.
//!
//! ## Data-dir layout
//!
//! ```text
//! DATA_DIR/
//! ├── jobs.journal                      write-ahead job record journal
//! ├── jobs/{id}/
//! │   ├── input.el                      inline input graph (GESMCEL1)
//! │   ├── job.ckpt                      latest checkpoint (GESMCKP1)
//! │   └── sample-{k:06}-s{step}.el      k-th thinned sample (GESMCEL1)
//! └── cache/{fp:016x}-{steps}-{slug:016x}.el   spilled one-shot samples
//! ```
//!
//! ## Journal
//!
//! Append-only; each entry is `[u32 len][u64 fnv1a(payload)][payload]` with
//! a JSON payload (`submitted` or `finished` events).  Appends are fsynced
//! before the submission is acknowledged, so **an acknowledged job is never
//! lost** — the converse (a journaled job whose 202 never reached the
//! client) is possible and documented as at-least-once.  On boot the
//! journal is replayed: a torn tail stops replay at the last whole entry, a
//! corrupt entry (checksum or JSON) is skipped — both are metered
//! ([`PersistMetrics::journal_skipped`]) and logged, never a panic.  Replay
//! then compacts the journal (atomic tmp + fsync + rename) to one
//! `submitted` (+ optional `finished`) pair per job.
//!
//! ## Recovery invariants
//!
//! * **No acked-lost job**: the journal append is durable before `202`.
//! * **Bit-identical resume**: an interrupted job resumes from its latest
//!   `GESMCKP1` checkpoint — exact PRNG stream state — so its remaining
//!   samples are byte-identical to an uninterrupted run; with no usable
//!   checkpoint it restarts from scratch, which produces the same bytes
//!   because seeds are part of the job record.
//! * **Graceful degradation**: every persistence failure after the
//!   acknowledgement point is absorbed (metered via
//!   [`PersistMetrics::errors`], job keeps running); failures before it
//!   refuse the acknowledgement (`503`) instead of acking work that could
//!   be lost.

use crate::cache::{derive_sample_seed, CacheKey, CachedSample};
use crate::fsio::PersistIo;
use crate::jobstore::{JobRecord, SharedSamples, StoredSample};
use crate::server::ServerState;
use gesmc_core::ChainSpec;
use gesmc_engine::{
    CallbackSink, Checkpoint, CheckpointSink, EngineError, GraphSource, JobHandle, JobReport,
    JobSpec, JobState, QueuedJob, SampleContext, SampleSink,
};
use gesmc_exmem::{ExmemError, MappedEdgeList};
use gesmc_graph::io::{
    read_edge_list_binary_file, write_edge_list, write_edge_list_binary, BINARY_MAGIC,
};
use gesmc_graph::EdgeListGraph;
use gesmc_randx::fnv1a_64;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bound on a single journal entry; larger length prefixes are read
/// as torn/corrupt framing, not as allocation requests.
const MAX_JOURNAL_ENTRY: u32 = 16 * 1024 * 1024;
/// Bytes of framing per journal entry (`u32` length + `u64` checksum).
const FRAME_HEADER: usize = 12;

/// Monotone counters of the persistence layer, rendered under
/// `gesmc_persist_*` in `/metrics`.
#[derive(Debug, Default)]
pub struct PersistMetrics {
    errors: AtomicU64,
    journal_entries: AtomicU64,
    journal_skipped: AtomicU64,
    checkpoints: AtomicU64,
    samples_spilled: AtomicU64,
    cache_rehydrated: AtomicU64,
    jobs_resumed: AtomicU64,
    jobs_restored: AtomicU64,
}

impl PersistMetrics {
    /// Persistence operations that failed (and were absorbed or refused).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Journal entries successfully appended.
    pub fn journal_entries(&self) -> u64 {
        self.journal_entries.load(Ordering::Relaxed)
    }

    /// Journal entries skipped during boot replay (torn tail or corrupt).
    pub fn journal_skipped(&self) -> u64 {
        self.journal_skipped.load(Ordering::Relaxed)
    }

    /// Checkpoints persisted for running jobs.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Samples spilled to disk (job samples and cache entries).
    pub fn samples_spilled(&self) -> u64 {
        self.samples_spilled.load(Ordering::Relaxed)
    }

    /// Cache entries rehydrated from disk after a miss.
    pub fn cache_rehydrated(&self) -> u64 {
        self.cache_rehydrated.load(Ordering::Relaxed)
    }

    /// In-flight jobs resumed on boot.
    pub fn jobs_resumed(&self) -> u64 {
        self.jobs_resumed.load(Ordering::Relaxed)
    }

    /// Finished job records restored on boot.
    pub fn jobs_restored(&self) -> u64 {
        self.jobs_restored.load(Ordering::Relaxed)
    }

    fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn count_skipped(&self) {
        self.journal_skipped.fetch_add(1, Ordering::Relaxed);
    }
}

/// How a journaled job's input graph is recovered on boot.
#[derive(Debug, Clone)]
pub(crate) enum PersistedGraph {
    /// Re-generate from the recorded generator parameters.
    Generated { family: String, nodes: usize, edges: usize, gamma: f64, seed: u64 },
    /// Re-read the job's `input.el` file (inline-edges submissions).
    File,
}

/// The immutable half of a journaled job record (the `submitted` event).
#[derive(Debug, Clone)]
pub(crate) struct JobMeta {
    pub id: u64,
    pub name: String,
    pub chain: String,
    pub supersteps: u64,
    pub thinning: u64,
    pub seed: u64,
    pub graph: PersistedGraph,
}

/// The terminal half of a journaled job record (the `finished` event).
#[derive(Debug, Clone)]
pub(crate) struct FinishedMeta {
    pub status: String,
    pub samples: u64,
    pub superstep: u64,
    pub error: Option<String>,
}

/// One job as reconstructed from the journal.
#[derive(Debug, Clone)]
pub(crate) struct ReplayedJob {
    pub meta: JobMeta,
    pub finished: Option<FinishedMeta>,
}

/// The persistence engine: owns the data-dir layout and every durable
/// write, all through the injectable [`PersistIo`] seam.
pub struct Persistence {
    root: PathBuf,
    io: Arc<dyn PersistIo>,
    metrics: Arc<PersistMetrics>,
    /// Serialises journal appends so concurrent submissions cannot
    /// interleave their frames.
    journal_lock: Mutex<()>,
    // Latency histograms of the durable-write paths, cached so the
    // ack-gating journal append never takes the obs registry lock.
    journal_hist: Arc<gesmc_obs::Histogram>,
    checkpoint_hist: Arc<gesmc_obs::Histogram>,
    spill_hist: Arc<gesmc_obs::Histogram>,
}

impl std::fmt::Debug for Persistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Persistence").field("root", &self.root).finish()
    }
}

fn frame_entry(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn json_u64(map: &Value, key: &str) -> Option<u64> {
    map.get(key).and_then(|v| v.as_u64())
}

fn encode_submitted(meta: &JobMeta) -> Value {
    let graph = match &meta.graph {
        PersistedGraph::Generated { family, nodes, edges, gamma, seed } => {
            let mut g = Map::new();
            g.insert("kind".to_string(), Value::String("generated".to_string()));
            g.insert("family".to_string(), Value::String(family.clone()));
            g.insert("nodes".to_string(), Value::Number(*nodes as f64));
            g.insert("edges".to_string(), Value::Number(*edges as f64));
            g.insert("gamma".to_string(), Value::Number(*gamma));
            g.insert("gseed".to_string(), Value::Number(*seed as f64));
            Value::Object(g)
        }
        PersistedGraph::File => {
            let mut g = Map::new();
            g.insert("kind".to_string(), Value::String("file".to_string()));
            Value::Object(g)
        }
    };
    let mut map = Map::new();
    map.insert("event".to_string(), Value::String("submitted".to_string()));
    map.insert("id".to_string(), Value::Number(meta.id as f64));
    map.insert("name".to_string(), Value::String(meta.name.clone()));
    map.insert("chain".to_string(), Value::String(meta.chain.clone()));
    map.insert("supersteps".to_string(), Value::Number(meta.supersteps as f64));
    map.insert("thinning".to_string(), Value::Number(meta.thinning as f64));
    map.insert("seed".to_string(), Value::Number(meta.seed as f64));
    map.insert("graph".to_string(), graph);
    Value::Object(map)
}

fn encode_finished(id: u64, fin: &FinishedMeta) -> Value {
    let mut map = Map::new();
    map.insert("event".to_string(), Value::String("finished".to_string()));
    map.insert("id".to_string(), Value::Number(id as f64));
    map.insert("status".to_string(), Value::String(fin.status.clone()));
    map.insert("samples".to_string(), Value::Number(fin.samples as f64));
    map.insert("superstep".to_string(), Value::Number(fin.superstep as f64));
    if let Some(error) = &fin.error {
        map.insert("error".to_string(), Value::String(error.clone()));
    }
    Value::Object(map)
}

fn warn(what: &str, err: &dyn std::fmt::Display) {
    gesmc_obs::warn!(target: "gesmc_serve::persist", "{what}: {err}");
}

/// Re-encode a spilled `GESMCEL1` sample through a zero-copy
/// [`MappedEdgeList`] view: edges stream straight off the mapped pages (or
/// the positioned-read fallback) into the text and binary response
/// encodings, never materialising a heap edge vector on top of the file
/// bytes.  Validation is the mapped view's — header rules identical to the
/// heap parser, per-edge checks during the stream — so a corrupt spill
/// yields `Err`, never wrong bytes.  Because spills are written from the
/// canonical binary encoding (`u ≤ v`, slot order preserved), the
/// re-encoded bytes are bit-identical to the originals.
fn rehydrate_spill(path: &Path) -> Result<(Vec<u8>, Vec<u8>), ExmemError> {
    let view = MappedEdgeList::open(path)?;
    let mut text =
        format!("# nodes {} edges {}\n", view.num_nodes(), view.num_edges()).into_bytes();
    let mut binary = Vec::with_capacity(24 + 8 * view.num_edges());
    binary.extend_from_slice(BINARY_MAGIC);
    binary.extend_from_slice(&(view.num_nodes() as u64).to_le_bytes());
    binary.extend_from_slice(&(view.num_edges() as u64).to_le_bytes());
    view.for_each_edge(&mut |_, e| {
        text.extend_from_slice(format!("{} {}\n", e.u(), e.v()).as_bytes());
        binary.extend_from_slice(&e.u().to_le_bytes());
        binary.extend_from_slice(&e.v().to_le_bytes());
    })?;
    Ok((text, binary))
}

impl Persistence {
    /// Open (creating if needed) the data directory layout under `root`.
    pub fn open(root: impl Into<PathBuf>, io: Arc<dyn PersistIo>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join("jobs"))?;
        std::fs::create_dir_all(root.join("cache"))?;
        Ok(Self {
            root,
            io,
            metrics: Arc::new(PersistMetrics::default()),
            journal_lock: Mutex::new(()),
            journal_hist: gesmc_obs::histogram(
                "gesmc_journal_append_duration_seconds",
                "Wall time of one journal append including its fsync.",
            ),
            checkpoint_hist: gesmc_obs::histogram(
                "gesmc_checkpoint_write_duration_seconds",
                "Wall time of one atomic checkpoint write for a running job.",
            ),
            spill_hist: gesmc_obs::histogram(
                "gesmc_spill_write_duration_seconds",
                "Wall time of one sample spill to disk (job samples and cache entries).",
            ),
        })
    }

    /// The persistence counters (shared with `/metrics`).
    pub fn metrics(&self) -> &PersistMetrics {
        &self.metrics
    }

    fn journal_path(&self) -> PathBuf {
        self.root.join("jobs.journal")
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.root.join("jobs").join(id.to_string())
    }

    pub(crate) fn input_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("input.el")
    }

    pub(crate) fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("job.ckpt")
    }

    fn sample_path(&self, id: u64, index: u64, superstep: u64) -> PathBuf {
        self.job_dir(id).join(format!("sample-{index:06}-s{superstep}.el"))
    }

    fn cache_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join("cache").join(format!(
            "{:016x}-{}-{:016x}.el",
            key.fingerprint,
            key.supersteps,
            fnv1a_64(key.chain_slug.as_bytes())
        ))
    }

    /// Append one fsynced entry to the journal.  Propagates failures (the
    /// caller decides whether the step is ack-gating); every failure is
    /// metered.
    fn append_journal(&self, payload: &Value) -> io::Result<()> {
        let text = serde_json::to_string(payload)
            .map_err(|e| io::Error::other(format!("journal encode: {e}")))?;
        let bytes = frame_entry(text.as_bytes());
        let path = self.journal_path();
        let result = {
            let _guard = self.journal_lock.lock().expect("journal mutex poisoned");
            gesmc_obs::span!(self.journal_hist, {
                self.io.append(&path, &bytes).and_then(|()| self.io.fsync(&path))
            })
        };
        match result {
            Ok(()) => {
                self.metrics.journal_entries.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.metrics.count_error();
                warn("journal append failed", &e);
                Err(e)
            }
        }
    }

    /// Journal a `submitted` event.  **Ack-gating**: failure propagates so
    /// the submission is refused instead of acknowledged-then-lost.
    pub(crate) fn journal_submitted(&self, meta: &JobMeta) -> io::Result<()> {
        self.append_journal(&encode_submitted(meta))
    }

    /// Journal a `finished` event.  Post-acknowledgement: failures are
    /// absorbed (the job already ran; at worst it re-runs after a crash).
    pub(crate) fn journal_finished(&self, id: u64, fin: &FinishedMeta) {
        let _ = self.append_journal(&encode_finished(id, fin));
    }

    /// Atomic durable write: tmp file, fsync, rename into place.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        self.io.write(&tmp, bytes)?;
        self.io.fsync(&tmp)?;
        self.io.rename(&tmp, path)
    }

    /// Persist an inline input graph as the job's `input.el`.  Ack-gating:
    /// failure propagates (and is metered).
    pub(crate) fn write_job_input(&self, id: u64, graph: &EdgeListGraph) -> io::Result<()> {
        let result = (|| {
            std::fs::create_dir_all(self.job_dir(id))?;
            let mut bytes = Vec::new();
            write_edge_list_binary(&mut bytes, graph).expect("writing to a Vec cannot fail");
            self.write_atomic(&self.input_path(id), &bytes)
        })();
        if let Err(e) = &result {
            self.metrics.count_error();
            warn("input spill failed", e);
        }
        result
    }

    /// Persist the latest checkpoint of a running job.  Absorbs failures —
    /// a storage hiccup must not kill a healthy job.
    pub(crate) fn write_checkpoint(&self, id: u64, checkpoint: &Checkpoint) {
        let result = gesmc_obs::span!(self.checkpoint_hist, {
            (|| {
                std::fs::create_dir_all(self.job_dir(id))?;
                self.write_atomic(&self.checkpoint_path(id), &checkpoint.to_bytes())
            })()
        });
        match result {
            Ok(()) => {
                self.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics.count_error();
                warn("checkpoint write failed", &e);
            }
        }
    }

    /// Spill one thinned job sample to disk.  Absorbs failures.
    pub(crate) fn spill_job_sample(&self, id: u64, index: u64, superstep: u64, binary: &[u8]) {
        let result = gesmc_obs::span!(self.spill_hist, {
            (|| {
                std::fs::create_dir_all(self.job_dir(id))?;
                self.write_atomic(&self.sample_path(id, index, superstep), binary)
            })()
        });
        match result {
            Ok(()) => {
                self.metrics.samples_spilled.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics.count_error();
                warn("sample spill failed", &e);
            }
        }
    }

    /// Spill a one-shot cache entry to disk.  Absorbs failures.
    pub(crate) fn spill_cache(&self, key: &CacheKey, sample: &CachedSample) {
        match gesmc_obs::span!(self.spill_hist, {
            self.write_atomic(&self.cache_path(key), &sample.binary)
        }) {
            Ok(()) => {
                self.metrics.samples_spilled.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics.count_error();
                warn("cache spill failed", &e);
            }
        }
    }

    /// Rehydrate a spilled cache entry through a zero-copy
    /// [`MappedEdgeList`] view.  A missing file is a plain miss; a corrupt
    /// file is metered and treated as a miss (never a wrong sample — the
    /// mapped view applies the same `GESMCEL1` validation rules as the
    /// heap parser and re-checks bounds on every access).
    pub(crate) fn load_cached(&self, key: &CacheKey) -> Option<CachedSample> {
        let path = self.cache_path(key);
        if !path.exists() {
            return None;
        }
        match rehydrate_spill(&path) {
            Ok((text, binary)) => {
                self.metrics.cache_rehydrated.fetch_add(1, Ordering::Relaxed);
                Some(CachedSample {
                    text: Arc::new(text),
                    binary: Arc::new(binary),
                    seed: derive_sample_seed(key),
                })
            }
            Err(e) => {
                self.metrics.count_error();
                warn("corrupt cache entry skipped", &e);
                None
            }
        }
    }

    /// Load a job's spilled samples in index order, stopping at the first
    /// gap or unreadable file (metered, not fatal).
    pub(crate) fn load_job_samples(&self, id: u64) -> Vec<StoredSample> {
        let dir = self.job_dir(id);
        let Ok(entries) = std::fs::read_dir(&dir) else { return Vec::new() };
        let mut found: BTreeMap<u64, (u64, PathBuf)> = BTreeMap::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_prefix("sample-").and_then(|s| s.strip_suffix(".el"))
            else {
                continue;
            };
            let Some((index_raw, step_raw)) = stem.split_once("-s") else { continue };
            let (Ok(index), Ok(step)) = (index_raw.parse::<u64>(), step_raw.parse::<u64>()) else {
                continue;
            };
            found.insert(index, (step, entry.path()));
        }
        let mut samples = Vec::with_capacity(found.len());
        for (index, (superstep, path)) in found {
            if index != samples.len() as u64 {
                break; // gap: everything past it is unusable
            }
            match rehydrate_spill(&path) {
                Ok((text, binary)) => {
                    samples.push(StoredSample {
                        superstep,
                        text: Arc::new(text),
                        binary: Arc::new(binary),
                    });
                }
                Err(e) => {
                    self.metrics.count_error();
                    warn("corrupt job sample skipped", &e);
                    break;
                }
            }
        }
        samples
    }

    /// Load a job's checkpoint; a corrupt or missing file is metered (when
    /// corrupt) and treated as "no checkpoint" — the job restarts from
    /// scratch rather than resuming from damaged state.
    pub(crate) fn load_checkpoint(&self, id: u64) -> Option<Checkpoint> {
        let path = self.checkpoint_path(id);
        if !path.exists() {
            return None;
        }
        match Checkpoint::read_from_file(&path) {
            Ok(checkpoint) => Some(checkpoint),
            Err(e) => {
                self.metrics.count_error();
                warn("corrupt checkpoint skipped", &e);
                None
            }
        }
    }

    /// Replay the journal into per-job records (submission order).  A torn
    /// tail stops replay; corrupt entries are skipped; both are metered.
    pub(crate) fn replay_journal(&self) -> Vec<ReplayedJob> {
        let bytes = match std::fs::read(self.journal_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Vec::new(),
            Err(e) => {
                self.metrics.count_error();
                warn("journal read failed", &e);
                return Vec::new();
            }
        };
        let mut jobs: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < FRAME_HEADER {
                self.metrics.count_skipped();
                warn("torn journal tail", &format!("{remaining} trailing bytes"));
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length checked"));
            let stored =
                u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("length checked"));
            if len > MAX_JOURNAL_ENTRY || (len as usize) > remaining - FRAME_HEADER {
                self.metrics.count_skipped();
                warn("torn journal tail", &format!("entry length {len} overruns the file"));
                break;
            }
            let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize];
            pos += FRAME_HEADER + len as usize;
            if fnv1a_64(payload) != stored {
                self.metrics.count_skipped();
                warn("corrupt journal entry skipped", &"checksum mismatch");
                continue;
            }
            let value = match std::str::from_utf8(payload)
                .ok()
                .and_then(|text| serde_json::from_str(text).ok())
            {
                Some(value) => value,
                None => {
                    self.metrics.count_skipped();
                    warn("corrupt journal entry skipped", &"payload is not valid JSON");
                    continue;
                }
            };
            self.apply_entry(&value, &mut jobs);
        }
        jobs.into_values().collect()
    }

    fn apply_entry(&self, value: &Value, jobs: &mut BTreeMap<u64, ReplayedJob>) {
        let (Some(event), Some(id)) =
            (value.get("event").and_then(|v| v.as_str()), json_u64(value, "id"))
        else {
            self.metrics.count_skipped();
            warn("malformed journal entry skipped", &"missing event or id");
            return;
        };
        match event {
            "submitted" => {
                let graph = match value.get("graph") {
                    Some(g) if g.get("kind").and_then(|v| v.as_str()) == Some("generated") => {
                        PersistedGraph::Generated {
                            family: g
                                .get("family")
                                .and_then(|v| v.as_str())
                                .unwrap_or("gnp")
                                .to_string(),
                            nodes: json_u64(g, "nodes").unwrap_or(0) as usize,
                            edges: json_u64(g, "edges").unwrap_or(0) as usize,
                            gamma: g.get("gamma").and_then(|v| v.as_f64()).unwrap_or(2.5),
                            seed: json_u64(g, "gseed").unwrap_or(1),
                        }
                    }
                    _ => PersistedGraph::File,
                };
                let meta = JobMeta {
                    id,
                    name: value
                        .get("name")
                        .and_then(|v| v.as_str())
                        .unwrap_or("restored")
                        .to_string(),
                    chain: value
                        .get("chain")
                        .and_then(|v| v.as_str())
                        .unwrap_or("par-global-es")
                        .to_string(),
                    supersteps: json_u64(value, "supersteps").unwrap_or(1),
                    thinning: json_u64(value, "thinning").unwrap_or(0),
                    seed: json_u64(value, "seed").unwrap_or(1),
                    graph,
                };
                jobs.insert(id, ReplayedJob { meta, finished: None });
            }
            "finished" => {
                if let Some(job) = jobs.get_mut(&id) {
                    job.finished = Some(FinishedMeta {
                        status: value
                            .get("status")
                            .and_then(|v| v.as_str())
                            .unwrap_or("failed")
                            .to_string(),
                        samples: json_u64(value, "samples").unwrap_or(0),
                        superstep: json_u64(value, "superstep").unwrap_or(0),
                        error: value.get("error").and_then(|v| v.as_str()).map(str::to_string),
                    });
                }
            }
            other => {
                self.metrics.count_skipped();
                warn("unknown journal event skipped", &other);
            }
        }
    }

    /// Rewrite the journal as one `submitted` (+ `finished`) pair per job,
    /// atomically.  Absorbs failures (the old journal replays identically).
    pub(crate) fn compact(&self, jobs: &[ReplayedJob]) {
        let mut out = Vec::new();
        let encode = |value: &Value| -> Option<Vec<u8>> {
            serde_json::to_string(value).ok().map(|text| frame_entry(text.as_bytes()))
        };
        for job in jobs {
            if let Some(frame) = encode(&encode_submitted(&job.meta)) {
                out.extend_from_slice(&frame);
            }
            if let Some(fin) = &job.finished {
                if let Some(frame) = encode(&encode_finished(job.meta.id, fin)) {
                    out.extend_from_slice(&frame);
                }
            }
        }
        let path = self.journal_path();
        let result = {
            let _guard = self.journal_lock.lock().expect("journal mutex poisoned");
            self.write_atomic(&path, &out)
        };
        if let Err(e) = result {
            self.metrics.count_error();
            warn("journal compaction failed (old journal kept)", &e);
        }
    }

    /// Remove job directories whose ids no longer appear in the journal
    /// (best-effort cleanup of corrupt-entry leftovers).
    pub(crate) fn remove_orphan_job_dirs(&self, live: &std::collections::BTreeSet<u64>) {
        let Ok(entries) = std::fs::read_dir(self.root.join("jobs")) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|s| s.parse::<u64>().ok()) else { continue };
            if !live.contains(&id) {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
}

/// The sink of a persistent job: encodes each thinned sample once, spills
/// it to disk (absorbing failures), and publishes it into the job's shared
/// in-memory list at its sample index.
pub(crate) fn make_job_sink(
    persist: Option<Arc<Persistence>>,
    id: u64,
    samples: SharedSamples,
) -> Box<dyn SampleSink> {
    Box::new(CallbackSink::new(
        move |ctx: &SampleContext<'_>, graph: &EdgeListGraph| -> Result<(), EngineError> {
            let mut text = Vec::new();
            write_edge_list(&mut text, graph).expect("writing to a Vec cannot fail");
            let mut binary = Vec::new();
            write_edge_list_binary(&mut binary, graph).expect("writing to a Vec cannot fail");
            if let Some(persist) = &persist {
                persist.spill_job_sample(id, ctx.sample_index, ctx.superstep, &binary);
            }
            let stored = StoredSample {
                superstep: ctx.superstep,
                text: Arc::new(text),
                binary: Arc::new(binary),
            };
            let mut vec = samples.lock().expect("samples mutex poisoned");
            let index = ctx.sample_index as usize;
            if index < vec.len() {
                // Resumed run re-emitting a pre-checkpoint sample: the bytes
                // are identical by construction, keep the list aligned.
                vec[index] = stored;
            } else {
                vec.push(stored);
            }
            Ok(())
        },
    ))
}

/// The [`CheckpointSink`] attached to persistent jobs: routes each periodic
/// capture into the data dir, absorbing I/O failures so a storage hiccup
/// degrades durability, not availability.
pub(crate) struct JobCheckpointSink {
    pub(crate) persist: Arc<Persistence>,
    pub(crate) id: u64,
}

impl CheckpointSink for JobCheckpointSink {
    fn store(&mut self, checkpoint: &Checkpoint) -> Result<(), EngineError> {
        self.persist.write_checkpoint(self.id, checkpoint);
        Ok(())
    }
}

/// Spawn the reaper thread of a persistent job: waits for the terminal
/// state and journals the `finished` event.  The handle is joined during
/// server teardown (after the pool drained, so every job is terminal).
pub(crate) fn spawn_reaper(
    state: &Arc<ServerState>,
    id: u64,
    handle: JobHandle,
    samples: SharedSamples,
) {
    let Some(persist) = state.persist.clone() else { return };
    let reaper = std::thread::spawn(move || {
        let terminal = handle.wait();
        let emitted = samples.lock().expect("samples mutex poisoned").len() as u64;
        let fin = match terminal {
            JobState::Done(report) => FinishedMeta {
                status: "done".to_string(),
                samples: emitted,
                superstep: report.supersteps,
                error: None,
            },
            JobState::Failed(msg) => FinishedMeta {
                status: "failed".to_string(),
                samples: emitted,
                superstep: handle.progress().superstep,
                error: Some(msg),
            },
            JobState::Cancelled(at) => FinishedMeta {
                status: "cancelled".to_string(),
                samples: emitted,
                superstep: at,
                error: None,
            },
            JobState::Queued | JobState::Running => {
                unreachable!("wait() only returns terminal states")
            }
        };
        persist.journal_finished(id, &fin);
    });
    state.reapers.lock().expect("reaper handles mutex poisoned").push(reaper);
}

/// Boot-time recovery: replay the journal, restore finished job records,
/// resume in-flight jobs (from their checkpoints when usable), compact the
/// journal, and clean up orphaned job directories.
pub(crate) fn boot_replay(state: &Arc<ServerState>) {
    let Some(persist) = state.persist.clone() else { return };
    let jobs = persist.replay_journal();
    gesmc_obs::info!(
        target: "gesmc_serve::persist",
        "boot replay: {} journaled jobs ({} already finished)",
        jobs.len(),
        jobs.iter().filter(|job| job.finished.is_some()).count()
    );
    if let Some(max_id) = jobs.iter().map(|job| job.meta.id).max() {
        state.jobs.ensure_next_id(max_id + 1);
    }
    // Compact before resuming, so reaper appends land after the rewrite.
    persist.compact(&jobs);
    let live: std::collections::BTreeSet<u64> = jobs.iter().map(|job| job.meta.id).collect();
    persist.remove_orphan_job_dirs(&live);
    for job in jobs {
        match job.finished {
            Some(fin) => restore_finished(state, &persist, job.meta, fin),
            None => resume_pending(state, &persist, job.meta),
        }
    }
}

/// Restore the record of a job that reached a terminal state before the
/// restart: samples come back from disk, the handle is detached.
fn restore_finished(
    state: &Arc<ServerState>,
    persist: &Arc<Persistence>,
    meta: JobMeta,
    fin: FinishedMeta,
) {
    let samples = persist.load_job_samples(meta.id);
    let terminal = match fin.status.as_str() {
        "done" => JobState::Done(JobReport {
            job: meta.name.clone(),
            algorithm: meta.chain.clone(),
            resumed_from: 0,
            supersteps: meta.supersteps,
            samples: samples.len() as u64,
            requested: 0,
            legal: 0,
            checkpoints: 0,
            duration: Duration::ZERO,
        }),
        "cancelled" => JobState::Cancelled(fin.superstep),
        _ => JobState::Failed(fin.error.unwrap_or_else(|| "failed before restart".to_string())),
    };
    let handle = JobHandle::detached(meta.name.clone(), terminal, fin.superstep, meta.supersteps);
    let record = JobRecord {
        id: meta.id,
        name: meta.name,
        chain: meta.chain,
        supersteps: meta.supersteps,
        thinning: meta.thinning,
        seed: meta.seed,
        handle,
        samples: Arc::new(Mutex::new(samples)),
    };
    if state.jobs.register(record).is_ok() {
        persist.metrics.jobs_restored.fetch_add(1, Ordering::Relaxed);
    }
}

/// Resume a job the previous process never finished: from its latest
/// usable checkpoint when one exists (bit-identical continuation), from
/// scratch otherwise (bit-identical by seed determinism).
fn resume_pending(state: &Arc<ServerState>, persist: &Arc<Persistence>, meta: JobMeta) {
    let register_failed = |msg: String| {
        persist.journal_finished(
            meta.id,
            &FinishedMeta {
                status: "failed".to_string(),
                samples: 0,
                superstep: 0,
                error: Some(msg.clone()),
            },
        );
        let handle =
            JobHandle::detached(meta.name.clone(), JobState::Failed(msg), 0, meta.supersteps);
        let record = JobRecord {
            id: meta.id,
            name: meta.name.clone(),
            chain: meta.chain.clone(),
            supersteps: meta.supersteps,
            thinning: meta.thinning,
            seed: meta.seed,
            handle,
            samples: Arc::new(Mutex::new(Vec::new())),
        };
        let _ = state.jobs.register(record);
    };

    let chain = match ChainSpec::parse(&meta.chain) {
        Ok(chain) => chain,
        Err(e) => return register_failed(format!("cannot resume: bad chain spec: {e}")),
    };
    let source = match &meta.graph {
        PersistedGraph::Generated { family, nodes, edges, gamma, seed } => GraphSource::Generated {
            family: family.clone(),
            nodes: *nodes,
            edges: *edges,
            gamma: *gamma,
            seed: *seed,
        },
        PersistedGraph::File => match read_edge_list_binary_file(persist.input_path(meta.id)) {
            Ok(graph) => GraphSource::InMemory(graph),
            Err(e) => {
                persist.metrics.count_error();
                return register_failed(format!("cannot resume: input graph unreadable: {e}"));
            }
        },
    };

    let on_disk = persist.load_job_samples(meta.id);
    // A checkpoint is only usable if every sample it claims was emitted is
    // actually recoverable; otherwise restart from scratch (same bytes, by
    // seed determinism).
    let checkpoint = persist
        .load_checkpoint(meta.id)
        .filter(|ckpt| ckpt.samples_emitted <= on_disk.len() as u64);
    let prefill: Vec<StoredSample> = match &checkpoint {
        Some(ckpt) => on_disk.into_iter().take(ckpt.samples_emitted as usize).collect(),
        None => Vec::new(),
    };
    let samples: SharedSamples = Arc::new(Mutex::new(prefill));

    let mut spec = JobSpec::new(meta.name.clone(), source, chain)
        .supersteps(meta.supersteps)
        .thinning(meta.thinning)
        .seed(meta.seed);
    spec.checkpoint_every = Some(state.config.checkpoint_every);

    let sink = make_job_sink(Some(Arc::clone(persist)), meta.id, Arc::clone(&samples));
    let queued = match checkpoint {
        Some(ckpt) => QueuedJob::resuming(spec, sink, ckpt),
        None => QueuedJob::new(spec, sink),
    }
    .with_checkpoint_sink(Box::new(JobCheckpointSink {
        persist: Arc::clone(persist),
        id: meta.id,
    }));

    let handle = match state.pool.submit(queued) {
        Ok(handle) => handle,
        Err(e) => return register_failed(format!("cannot resume: {e}")),
    };
    let record = JobRecord {
        id: meta.id,
        name: meta.name,
        chain: meta.chain,
        supersteps: meta.supersteps,
        thinning: meta.thinning,
        seed: meta.seed,
        handle: handle.clone(),
        samples: Arc::clone(&samples),
    };
    if state.jobs.register(record).is_err() {
        handle.cancel();
        return;
    }
    spawn_reaper(state, meta.id, handle, samples);
    persist.metrics.jobs_resumed.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsio::StdFs;
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    fn temp_persistence(tag: &str) -> Persistence {
        let root = std::env::temp_dir().join(format!("gesmc-persist-test-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        Persistence::open(root, Arc::new(StdFs)).unwrap()
    }

    fn drop_persistence(p: Persistence) {
        let _ = std::fs::remove_dir_all(&p.root);
    }

    fn sample_meta(id: u64) -> JobMeta {
        JobMeta {
            id,
            name: format!("job-{id}"),
            chain: "par-global-es?pl=0.01".to_string(),
            supersteps: 100,
            thinning: 50,
            seed: 42,
            graph: PersistedGraph::Generated {
                family: "gnp".to_string(),
                nodes: 64,
                edges: 128,
                gamma: 2.5,
                seed: 7,
            },
        }
    }

    #[test]
    fn journal_roundtrips_submitted_and_finished_events() {
        let p = temp_persistence("roundtrip");
        p.journal_submitted(&sample_meta(1)).unwrap();
        p.journal_submitted(&sample_meta(2)).unwrap();
        p.journal_finished(
            1,
            &FinishedMeta { status: "done".to_string(), samples: 2, superstep: 100, error: None },
        );
        assert_eq!(p.metrics().journal_entries(), 3);
        let jobs = p.replay_journal();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].meta.id, 1);
        assert_eq!(jobs[0].meta.chain, "par-global-es?pl=0.01");
        let fin = jobs[0].finished.as_ref().unwrap();
        assert_eq!(fin.status, "done");
        assert_eq!(fin.samples, 2);
        assert!(jobs[1].finished.is_none(), "job 2 never finished");
        match &jobs[1].meta.graph {
            PersistedGraph::Generated { family, nodes, edges, seed, .. } => {
                assert_eq!(family, "gnp");
                assert_eq!((*nodes, *edges, *seed), (64, 128, 7));
            }
            other => panic!("wrong graph kind replayed: {other:?}"),
        }
        assert_eq!(p.metrics().journal_skipped(), 0);
        drop_persistence(p);
    }

    #[test]
    fn torn_journal_tail_stops_replay_without_losing_whole_entries() {
        let p = temp_persistence("torn");
        p.journal_submitted(&sample_meta(1)).unwrap();
        // Simulate a crash mid-append: garbage trailing bytes.
        StdFs.append(&p.journal_path(), &[0xAB; 7]).unwrap();
        let jobs = p.replay_journal();
        assert_eq!(jobs.len(), 1, "the whole entry before the tear survives");
        assert_eq!(p.metrics().journal_skipped(), 1);
        drop_persistence(p);
    }

    #[test]
    fn corrupt_journal_entry_is_skipped_and_later_entries_survive() {
        let p = temp_persistence("corrupt");
        p.journal_submitted(&sample_meta(1)).unwrap();
        let first_len = std::fs::metadata(p.journal_path()).unwrap().len();
        p.journal_submitted(&sample_meta(2)).unwrap();
        // Flip a payload byte inside the first entry (framing intact).
        let mut bytes = std::fs::read(p.journal_path()).unwrap();
        let victim = (first_len as usize) - 2;
        bytes[victim] ^= 0xFF;
        std::fs::write(p.journal_path(), &bytes).unwrap();
        let jobs = p.replay_journal();
        assert_eq!(jobs.len(), 1, "only the intact entry replays");
        assert_eq!(jobs[0].meta.id, 2);
        assert_eq!(p.metrics().journal_skipped(), 1);
        drop_persistence(p);
    }

    #[test]
    fn compaction_rewrites_one_pair_per_job_and_replays_identically() {
        let p = temp_persistence("compact");
        // Duplicate submissions (as after repeated crashes before compaction).
        for _ in 0..3 {
            p.journal_submitted(&sample_meta(1)).unwrap();
        }
        p.journal_finished(
            1,
            &FinishedMeta {
                status: "failed".to_string(),
                samples: 0,
                superstep: 17,
                error: Some("boom".to_string()),
            },
        );
        let before = p.replay_journal();
        p.compact(&before);
        let after = p.replay_journal();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].meta.name, before[0].meta.name);
        let fin = after[0].finished.as_ref().unwrap();
        assert_eq!((fin.status.as_str(), fin.superstep), ("failed", 17));
        assert_eq!(fin.error.as_deref(), Some("boom"));
        let compacted_len = std::fs::metadata(p.journal_path()).unwrap().len();
        assert!(compacted_len > 0);
        drop_persistence(p);
    }

    #[test]
    fn cache_spill_rehydrates_bit_identically_and_rejects_corruption() {
        let p = temp_persistence("cache");
        let graph = gnp(&mut rng_from_seed(5), 60, 0.1);
        let key = CacheKey {
            fingerprint: 0xDEAD_BEEF,
            chain_slug: "par-global-es".to_string(),
            supersteps: 40,
        };
        let mut text = Vec::new();
        write_edge_list(&mut text, &graph).unwrap();
        let mut binary = Vec::new();
        write_edge_list_binary(&mut binary, &graph).unwrap();
        let sample = CachedSample {
            text: Arc::new(text),
            binary: Arc::new(binary),
            seed: derive_sample_seed(&key),
        };
        assert!(p.load_cached(&key).is_none(), "nothing spilled yet");
        p.spill_cache(&key, &sample);
        assert_eq!(p.metrics().samples_spilled(), 1);
        let back = p.load_cached(&key).expect("spilled entry rehydrates");
        assert_eq!(*back.binary, *sample.binary, "binary bytes survive the round trip");
        assert_eq!(*back.text, *sample.text, "text bytes survive the round trip");
        assert_eq!(back.seed, sample.seed);
        assert_eq!(p.metrics().cache_rehydrated(), 1);
        // Corrupt the spilled file: rehydration must refuse it, not serve it.
        let path = p.cache_path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(p.load_cached(&key).is_none(), "corrupt entry must read as a miss");
        assert!(p.metrics().errors() >= 1);
        drop_persistence(p);
    }

    #[test]
    fn job_samples_load_in_index_order_and_stop_at_gaps() {
        let p = temp_persistence("samples");
        let g0 = gnp(&mut rng_from_seed(1), 40, 0.1);
        let g1 = gnp(&mut rng_from_seed(2), 40, 0.1);
        let g3 = gnp(&mut rng_from_seed(3), 40, 0.1);
        for (index, superstep, graph) in [(0, 10, &g0), (1, 20, &g1), (3, 40, &g3)] {
            let mut binary = Vec::new();
            write_edge_list_binary(&mut binary, graph).unwrap();
            p.spill_job_sample(9, index, superstep, &binary);
        }
        let loaded = p.load_job_samples(9);
        assert_eq!(loaded.len(), 2, "index 3 is unreachable past the gap at 2");
        assert_eq!(loaded[0].superstep, 10);
        assert_eq!(loaded[1].superstep, 20);
        let mut expect = Vec::new();
        write_edge_list_binary(&mut expect, &g1).unwrap();
        assert_eq!(*loaded[1].binary, expect);
        drop_persistence(p);
    }
}
