//! `gesmc-serve` — a dependency-free HTTP sampling service with a warm
//! sample cache.
//!
//! The paper's end product is a *stream of uniform null-model samples*
//! consumed by downstream analyses (Sec. 6.1).  Everything below this crate
//! produces that stream from a local process; `gesmc-serve` turns it into a
//! network service, so null-model queries become cached, backpressured HTTP
//! requests:
//!
//! | Endpoint | Description |
//! |---|---|
//! | `POST /v1/jobs` | submit a randomization job (inline edge list or generator spec, any registered chain) |
//! | `GET /v1/jobs/{id}` | job status and progress |
//! | `DELETE /v1/jobs/{id}` | cancel a job |
//! | `GET /v1/jobs/{id}/samples/{k}` | the `k`-th thinned sample (text, or binary under `Accept: application/octet-stream`) |
//! | `GET /v1/sample?graph=…&algo=…` | synchronous one-shot sample for small graphs (the warm-cache hot path) |
//! | `GET /v1/jobs` | list every job resident on this node |
//! | `GET /v1/algorithms` | the chain registry |
//! | `GET /v1/cluster` | ring membership, peer health, and forwarding counters |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus-style counters |
//! | `GET /v1/debug/traces?min_ms=N` | index of kept distributed traces (tail-sampled flight recorder) |
//! | `GET /v1/debug/trace/{id}` | one kept trace's span fragment (joined across nodes by `gesmc trace`) |
//! | `POST /v1/shutdown` | graceful shutdown (only with [`ServeConfig::allow_shutdown`]) |
//!
//! ## Architecture
//!
//! The server is written on `std::net` only — no async runtime, a hand-rolled
//! strict HTTP/1.1 codec ([`http`]) — consistent with the workspace's
//! offline-vendoring policy.  A fixed set of HTTP worker threads serves
//! parsed requests; all chain execution happens on the engine's
//! [`ServicePool`](gesmc_engine::ServicePool) behind a **bounded admission
//! queue**, so overload degrades into fast `429 Retry-After` responses
//! instead of latency collapse.
//!
//! The hot path is the **warm sample cache** ([`cache`]): an LRU keyed by
//! `(graph fingerprint, canonical chain slug, supersteps)`.  Sample seeds
//! are derived deterministically from that key, so identical queries are
//! served bit-identically whether they hit the cache or recompute — repeated
//! null-model queries are O(1) lookups, cold keys flow through the pool
//! (concurrent misses for one key are coalesced into a single job), and
//! `…&warm=true` pre-warms a key in the background without waiting.
//!
//! With [`ServeConfig::cluster`] set, nodes shard that cache over a
//! consistent-hash ring ([`cluster`]): a node receiving a `/v1/sample`
//! request for a key another node owns forwards it peer-to-peer (one hop at
//! most) so each key is cached exactly once cluster-wide; unreachable owners
//! are computed around locally, bit-identically.
//!
//! ```no_run
//! use gesmc_serve::{ServeConfig, Server};
//!
//! let mut config = ServeConfig::default();
//! config.addr = "127.0.0.1:0".to_string(); // ephemeral port
//! let server = Server::bind(config).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! server.shutdown(); // graceful: drains in-flight work, joins all threads
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod fsio;
pub mod http;
pub mod jobstore;
pub mod metrics;
pub mod persist;
pub(crate) mod router;
pub mod server;

pub use cache::{CacheKey, CacheStats, CachedSample, SampleCache};
pub use cluster::{ClusterConfig, ClusterMetrics};
pub use fsio::{FaultIo, IoOp, PersistIo, StdFs};
pub use persist::{PersistMetrics, Persistence};
pub use server::Server;

use std::path::PathBuf;
use std::sync::Arc;

/// Server configuration; every field has a production-ish default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads serving parsed requests.
    pub http_workers: usize,
    /// Engine worker threads running chains (`0` = hardware parallelism).
    pub engine_workers: usize,
    /// Warm-cache capacity in entries (`0` disables the cache).
    pub cache_entries: usize,
    /// Bound of the engine admission queue; beyond it, sampling work is shed
    /// with `429` (`0` = unbounded, never shed).
    pub max_pending: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Largest accepted per-job superstep target.
    pub max_supersteps: u64,
    /// Largest graph (in edges) the synchronous `/v1/sample` path accepts;
    /// bigger graphs must go through `POST /v1/jobs`.
    pub max_sync_edges: usize,
    /// Largest generated graph (in edges) `POST /v1/jobs` accepts.
    pub max_graph_edges: usize,
    /// Most thinned samples a single job may retain.
    pub max_job_samples: u64,
    /// Estimated byte budget for one job's retained samples (both
    /// encodings); `supersteps/thinning × edges` requests beyond it are
    /// rejected at submission, so no single job can exhaust memory while
    /// individually honouring the edge and sample-count limits.
    pub max_retained_sample_bytes: u64,
    /// Most job records retained in the store.
    pub max_jobs: usize,
    /// Whether `POST /v1/shutdown` is honoured (CI and tests; off by
    /// default so a stray request cannot stop a production server).
    pub allow_shutdown: bool,
    /// Durability root (`--data-dir`).  When set, job submissions are
    /// journaled before they are acknowledged, running jobs checkpoint
    /// every [`checkpoint_every`](Self::checkpoint_every) supersteps, and
    /// one-shot cache entries spill to disk; on boot the directory is
    /// replayed — finished jobs come back queryable, interrupted jobs
    /// resume bit-identically.  `None` (the default) keeps the server
    /// fully in-memory.
    pub data_dir: Option<PathBuf>,
    /// Checkpoint cadence for persistent jobs, in supersteps (ignored
    /// without [`data_dir`](Self::data_dir); `0` disables checkpointing,
    /// leaving from-scratch recomputation as the recovery path).
    pub checkpoint_every: u64,
    /// The filesystem seam persistence writes through; `None` uses
    /// [`StdFs`].  Tests inject a [`FaultIo`] here to fail any durable
    /// step deterministically.
    pub persist_io: Option<Arc<dyn PersistIo>>,
    /// Cluster membership (`--peers`/`--advertise`); `None` (the default)
    /// runs a standalone node.  When set, the advertise address must appear
    /// in the peers list — [`Server::bind`] rejects the config otherwise.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            http_workers: 4,
            engine_workers: 0,
            cache_entries: 256,
            max_pending: 64,
            max_body_bytes: 8 * 1024 * 1024,
            max_supersteps: 100_000,
            max_sync_edges: 200_000,
            max_graph_edges: 5_000_000,
            max_job_samples: 1_000,
            max_retained_sample_bytes: 256 * 1024 * 1024,
            max_jobs: 1_024,
            allow_shutdown: false,
            data_dir: None,
            checkpoint_every: 25,
            persist_io: None,
            cluster: None,
        }
    }
}
