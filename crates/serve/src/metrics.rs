//! Service counters and their Prometheus text rendering (`GET /metrics`).

use crate::cache::SampleCache;
use crate::cluster::ClusterMetrics;
use crate::persist::PersistMetrics;
use gesmc_engine::ServicePool;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic HTTP-layer counters plus the scrape-time gauges sourced from
/// the pool and cache.
pub struct Metrics {
    start: Instant,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_shed: AtomicU64,
    responses_5xx: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Zeroed counters, uptime starting now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_shed: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
        }
    }

    /// Count one parsed request.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one written response by status class (429 separately: it is the
    /// load-shedding signal operators alert on).
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            429 => &self.responses_shed,
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed with 429 so far.
    pub fn shed_total(&self) -> u64 {
        self.responses_shed.load(Ordering::Relaxed)
    }

    /// Render the Prometheus exposition text.  `persist` is the durability
    /// layer's counters; `None` (no `--data-dir`) omits the
    /// `gesmc_persist_*` family entirely.  Likewise `cluster` is the ring's
    /// snapshot; `None` (standalone node) omits the `gesmc_cluster_*`
    /// family.
    pub fn render(
        &self,
        pool: &ServicePool,
        cache: &SampleCache,
        jobs_resident: usize,
        persist: Option<&PersistMetrics>,
        cluster: Option<&ClusterMetrics>,
    ) -> String {
        fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            if value.fract() == 0.0 {
                let _ = writeln!(out, "{name} {value:.0}");
            } else {
                let _ = writeln!(out, "{name} {value}");
            }
        }
        let mut out = String::with_capacity(2048);

        let _ = writeln!(out, "# HELP gesmc_build_info Build metadata as constant labels.");
        let _ = writeln!(out, "# TYPE gesmc_build_info gauge");
        let _ = writeln!(out, "gesmc_build_info{{version=\"{}\"}} 1", env!("CARGO_PKG_VERSION"));
        let uptime = self.start.elapsed().as_secs_f64();
        gauge(&mut out, "gesmc_uptime_seconds", "Seconds since the server started.", uptime);
        gauge(
            &mut out,
            "gesmc_http_requests_total",
            "Requests parsed off the wire.",
            self.requests.load(Ordering::Relaxed) as f64,
        );
        let _ =
            writeln!(out, "# HELP gesmc_http_responses_total Responses written, by status class.");
        let _ = writeln!(out, "# TYPE gesmc_http_responses_total gauge");
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("429", &self.responses_shed),
            ("5xx", &self.responses_5xx),
        ] {
            let _ = writeln!(
                out,
                "gesmc_http_responses_total{{class=\"{class}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }

        gauge(
            &mut out,
            "gesmc_queue_depth",
            "Jobs waiting in the engine admission queue.",
            pool.queue_depth() as f64,
        );
        gauge(
            &mut out,
            "gesmc_jobs_running",
            "Jobs executing on engine workers.",
            pool.running() as f64,
        );
        let (completed, failed, cancelled) = pool.job_counts();
        gauge(
            &mut out,
            "gesmc_jobs_completed_total",
            "Jobs finished successfully.",
            completed as f64,
        );
        gauge(&mut out, "gesmc_jobs_failed_total", "Jobs that failed.", failed as f64);
        gauge(&mut out, "gesmc_jobs_cancelled_total", "Jobs cancelled.", cancelled as f64);
        gauge(
            &mut out,
            "gesmc_jobs_resident",
            "Job records retained in the store.",
            jobs_resident as f64,
        );

        let stats = cache.stats();
        gauge(
            &mut out,
            "gesmc_cache_entries",
            "Samples resident in the warm cache.",
            stats.entries as f64,
        );
        gauge(
            &mut out,
            "gesmc_cache_capacity",
            "Configured warm-cache capacity.",
            cache.capacity() as f64,
        );
        gauge(
            &mut out,
            "gesmc_cache_hits_total",
            "Warm-cache lookups that hit.",
            stats.hits as f64,
        );
        gauge(
            &mut out,
            "gesmc_cache_misses_total",
            "Warm-cache lookups that missed.",
            stats.misses as f64,
        );
        gauge(
            &mut out,
            "gesmc_cache_evictions_total",
            "Warm-cache LRU evictions.",
            stats.evictions as f64,
        );
        let lookups = stats.hits + stats.misses;
        let hit_rate = if lookups == 0 { 0.0 } else { stats.hits as f64 / lookups as f64 };
        gauge(&mut out, "gesmc_cache_hit_rate", "Lifetime warm-cache hit fraction.", hit_rate);

        let supersteps = pool.supersteps_total();
        gauge(
            &mut out,
            "gesmc_supersteps_total",
            "Chain supersteps completed across all jobs.",
            supersteps as f64,
        );
        let rate = if uptime > 0.0 { supersteps as f64 / uptime } else { 0.0 };
        gauge(&mut out, "gesmc_supersteps_per_second", "Lifetime average superstep rate.", rate);

        if let Some(persist) = persist {
            for (name, help, value) in [
                (
                    "gesmc_persist_errors_total",
                    "Persistence operations that failed (absorbed or refused).",
                    persist.errors(),
                ),
                (
                    "gesmc_persist_journal_entries_total",
                    "Job journal entries appended.",
                    persist.journal_entries(),
                ),
                (
                    "gesmc_persist_journal_skipped_total",
                    "Journal entries skipped during boot replay (torn or corrupt).",
                    persist.journal_skipped(),
                ),
                (
                    "gesmc_persist_checkpoints_total",
                    "Checkpoints written for running jobs.",
                    persist.checkpoints(),
                ),
                (
                    "gesmc_persist_samples_spilled_total",
                    "Samples spilled to disk (job samples and cache entries).",
                    persist.samples_spilled(),
                ),
                (
                    "gesmc_persist_cache_rehydrated_total",
                    "Cache entries rehydrated from disk.",
                    persist.cache_rehydrated(),
                ),
                (
                    "gesmc_persist_jobs_resumed_total",
                    "In-flight jobs resumed on boot.",
                    persist.jobs_resumed(),
                ),
                (
                    "gesmc_persist_jobs_restored_total",
                    "Finished job records restored on boot.",
                    persist.jobs_restored(),
                ),
            ] {
                gauge(&mut out, name, help, value as f64);
            }
        }

        if let Some(cluster) = cluster {
            gauge(
                &mut out,
                "gesmc_cluster_peers",
                "Cluster size (peers, this node included).",
                cluster.peers as f64,
            );
            let _ = writeln!(
                out,
                "# HELP gesmc_cluster_peer_healthy Whether a remote peer is healthy (1) or ejected (0)."
            );
            let _ = writeln!(out, "# TYPE gesmc_cluster_peer_healthy gauge");
            for (peer, healthy) in &cluster.peer_health {
                let _ = writeln!(
                    out,
                    "gesmc_cluster_peer_healthy{{peer=\"{peer}\"}} {}",
                    u8::from(*healthy)
                );
            }
            gauge(
                &mut out,
                "gesmc_cluster_forwarded_total",
                "Sample requests forwarded to their ring owner.",
                cluster.forwarded as f64,
            );
            gauge(
                &mut out,
                "gesmc_cluster_forward_fallbacks_total",
                "Forwards that fell back to local computation.",
                cluster.fallbacks as f64,
            );
            gauge(
                &mut out,
                "gesmc_cluster_forwards_received_total",
                "Forwarded sample requests received from peers.",
                cluster.received as f64,
            );
        }

        // Process self-telemetry from procfs; each gauge is omitted (not
        // zeroed) on platforms where its /proc source is unavailable.
        let telemetry = gesmc_obs::self_telemetry();
        for (name, help, value) in [
            (
                "gesmc_process_peak_rss_bytes",
                "Peak resident set size of this process (VmHWM).",
                telemetry.peak_rss_bytes,
            ),
            (
                "gesmc_process_open_fds",
                "File descriptors currently open in this process.",
                telemetry.open_fds,
            ),
            (
                "gesmc_process_io_read_bytes_total",
                "Bytes this process fetched from the storage layer.",
                telemetry.read_bytes,
            ),
            (
                "gesmc_process_io_write_bytes_total",
                "Bytes this process sent to the storage layer.",
                telemetry.write_bytes,
            ),
        ] {
            if let Some(value) = value {
                gauge(&mut out, name, help, value as f64);
            }
        }

        // The observability registry (latency histograms and event counters
        // from obs-instrumented code paths) renders last so the gauge lines
        // above keep their exact shape for line-anchored scrapers.
        out.push_str(&gesmc_obs::render_prometheus());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::ChainSpec;
    use gesmc_engine::{GraphSource, JobSpec, NullSink, QueuedJob};
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn render_reflects_counters_and_pool_state() {
        let metrics = Metrics::new();
        metrics.count_request();
        metrics.count_request();
        metrics.count_response(200);
        metrics.count_response(429);
        metrics.count_response(404);
        metrics.count_response(500);
        assert_eq!(metrics.shed_total(), 1);

        let pool = gesmc_engine::ServicePool::start(1, 0);
        let graph = gnp(&mut rng_from_seed(1), 40, 0.15);
        let spec =
            JobSpec::new("m", GraphSource::InMemory(graph), ChainSpec::new("seq-es")).supersteps(5);
        pool.submit(QueuedJob::new(spec, Box::new(NullSink::default()))).unwrap().wait();
        let cache = SampleCache::new(4);

        let text = metrics.render(&pool, &cache, 3, None, None);
        assert!(
            !text.contains("gesmc_persist_"),
            "persistence gauges must be absent without a data dir"
        );
        assert!(
            !text.contains("gesmc_cluster_"),
            "cluster gauges must be absent on a standalone node"
        );
        let persist = PersistMetrics::default();
        let text_with_persist = metrics.render(&pool, &cache, 3, Some(&persist), None);
        assert!(text_with_persist.contains("gesmc_persist_errors_total 0"));
        assert!(text_with_persist.contains("gesmc_persist_journal_entries_total 0"));
        let cluster = ClusterMetrics {
            peers: 3,
            peer_health: vec![("n2:1".to_string(), true), ("n3:1".to_string(), false)],
            forwarded: 7,
            fallbacks: 2,
            received: 4,
        };
        let text_with_cluster = metrics.render(&pool, &cache, 3, None, Some(&cluster));
        assert!(text_with_cluster.contains("gesmc_cluster_peers 3"));
        assert!(text_with_cluster.contains("gesmc_cluster_peer_healthy{peer=\"n2:1\"} 1"));
        assert!(text_with_cluster.contains("gesmc_cluster_peer_healthy{peer=\"n3:1\"} 0"));
        assert!(text_with_cluster.contains("gesmc_cluster_forwarded_total 7"));
        assert!(text_with_cluster.contains("gesmc_cluster_forward_fallbacks_total 2"));
        assert!(text_with_cluster.contains("gesmc_cluster_forwards_received_total 4"));
        assert!(text.contains("gesmc_http_requests_total 2"));
        assert!(text.contains("gesmc_http_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("gesmc_http_responses_total{class=\"429\"} 1"));
        assert!(text.contains("gesmc_http_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("gesmc_http_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("gesmc_jobs_completed_total 1"));
        assert!(text.contains("gesmc_jobs_resident 3"));
        assert!(text.contains("gesmc_supersteps_total 5"));
        assert!(text.contains("gesmc_cache_capacity 4"));
        assert!(text.contains("# TYPE gesmc_uptime_seconds gauge"));
        #[cfg(target_os = "linux")]
        {
            assert!(text.contains("gesmc_process_peak_rss_bytes"));
            assert!(text.contains("gesmc_process_open_fds"));
        }
        assert!(text
            .contains(&format!("gesmc_build_info{{version=\"{}\"}} 1", env!("CARGO_PKG_VERSION"))));
        // The obs registry render is appended after every gauge above.
        gesmc_obs::histogram("gesmc_metrics_render_test_seconds", "Test-only series.")
            .record_ns(512);
        let text = metrics.render(&pool, &cache, 3, None, None);
        assert!(text.contains("# TYPE gesmc_metrics_render_test_seconds histogram"));
        assert!(
            text.find("gesmc_uptime_seconds").unwrap()
                < text.find("gesmc_metrics_render_test_seconds").unwrap(),
            "obs families must render after the built-in gauges"
        );
        pool.shutdown();
    }
}
