//! The asynchronous job registry behind `POST /v1/jobs`.
//!
//! Each submitted job is tracked as a [`JobRecord`]: the engine
//! [`JobHandle`] (status, progress, cancellation) plus the thinned samples
//! the job streamed so far, pre-encoded in both response formats.  Records
//! are retained after completion so clients can fetch samples at their own
//! pace; the store is bounded, evicting the oldest *finished* record once
//! full and refusing new submissions when every resident job is still
//! live.

use gesmc_engine::{JobHandle, JobState};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One pre-encoded thinned sample of a job.
#[derive(Debug, Clone)]
pub struct StoredSample {
    /// Superstep after which the sample was taken.
    pub superstep: u64,
    /// Plain-text edge-list encoding.
    pub text: Arc<Vec<u8>>,
    /// Binary edge-list encoding (`GESMCEL1`).
    pub binary: Arc<Vec<u8>>,
}

/// Shared, append-only sample list a job's sink writes into.
pub type SharedSamples = Arc<Mutex<Vec<StoredSample>>>;

/// One tracked job.
pub struct JobRecord {
    /// Store-assigned id (also the URL path segment).
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Canonical chain spec string.
    pub chain: String,
    /// Superstep target.
    pub supersteps: u64,
    /// Thinning interval.
    pub thinning: u64,
    /// Chain seed.
    pub seed: u64,
    /// The engine handle (status / progress / cancel).
    pub handle: JobHandle,
    /// Samples streamed so far.
    pub samples: SharedSamples,
}

impl JobRecord {
    /// The status document `GET /v1/jobs/{id}` serves.
    pub fn status_json(&self) -> Value {
        let state = self.handle.state();
        let progress = self.handle.progress();
        let mut map = Map::new();
        map.insert("id".to_string(), Value::Number(self.id as f64));
        map.insert("name".to_string(), Value::String(self.name.clone()));
        map.insert("chain".to_string(), Value::String(self.chain.clone()));
        map.insert("status".to_string(), Value::String(state.label().to_string()));
        map.insert("superstep".to_string(), Value::Number(progress.superstep as f64));
        map.insert("total_supersteps".to_string(), Value::Number(self.supersteps as f64));
        map.insert("thinning".to_string(), Value::Number(self.thinning as f64));
        map.insert("seed".to_string(), Value::Number(self.seed as f64));
        let samples = self.samples.lock().expect("samples mutex poisoned").len();
        map.insert("samples".to_string(), Value::Number(samples as f64));
        match &state {
            JobState::Failed(msg) => {
                map.insert("error".to_string(), Value::String(msg.clone()));
            }
            JobState::Cancelled(superstep) => {
                map.insert("cancelled_at".to_string(), Value::Number(*superstep as f64));
            }
            _ => {}
        }
        Value::Object(map)
    }
}

/// Why the store rejected a registration.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Every resident record is still live; retry once some finish.
    Full {
        /// Configured capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Full { capacity } => {
                write!(f, "job store is full ({capacity} live jobs)")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Bounded registry of submitted jobs, ordered by id.
pub struct JobStore {
    inner: Mutex<BTreeMap<u64, Arc<JobRecord>>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl JobStore {
    /// A store retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(BTreeMap::new()), next_id: AtomicU64::new(1), capacity }
    }

    /// Reserve the id the next registered job will get (ids are assigned in
    /// submission order and never reused).
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Raise the id counter to at least `floor` (no-op when already past
    /// it).  Boot replay uses this so restored job ids are never reissued.
    pub fn ensure_next_id(&self, floor: u64) {
        self.next_id.fetch_max(floor, Ordering::Relaxed);
    }

    /// Register a record under its id, evicting the oldest finished record
    /// when at capacity.  Fails with [`StoreError::Full`] when every
    /// resident record is still queued or running.
    pub fn register(&self, record: JobRecord) -> Result<Arc<JobRecord>, StoreError> {
        let mut inner = self.inner.lock().expect("job store mutex poisoned");
        if inner.len() >= self.capacity {
            let oldest_finished =
                inner.iter().find(|(_, r)| r.handle.state().is_terminal()).map(|(&id, _)| id);
            match oldest_finished {
                Some(id) => {
                    inner.remove(&id);
                }
                None => return Err(StoreError::Full { capacity: self.capacity }),
            }
        }
        let record = Arc::new(record);
        inner.insert(record.id, Arc::clone(&record));
        Ok(record)
    }

    /// Look a record up by id.
    pub fn get(&self, id: u64) -> Option<Arc<JobRecord>> {
        self.inner.lock().expect("job store mutex poisoned").get(&id).cloned()
    }

    /// Every resident record, in ascending id order (`/v1/debug/stats`).
    pub fn records(&self) -> Vec<Arc<JobRecord>> {
        self.inner.lock().expect("job store mutex poisoned").values().cloned().collect()
    }

    /// Number of resident records.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("job store mutex poisoned").len()
    }

    /// Whether no record is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::ChainSpec;
    use gesmc_engine::{GraphSource, JobSpec, NullSink, QueuedJob, ServicePool};
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    fn record_for(store: &JobStore, pool: &ServicePool, supersteps: u64) -> JobRecord {
        let id = store.allocate_id();
        let graph = gnp(&mut rng_from_seed(id), 40, 0.15);
        let spec = JobSpec::new(
            format!("job{id}"),
            GraphSource::InMemory(graph),
            ChainSpec::new("seq-es"),
        )
        .supersteps(supersteps)
        .seed(id);
        let handle = pool.submit(QueuedJob::new(spec, Box::new(NullSink::default()))).unwrap();
        JobRecord {
            id,
            name: format!("job{id}"),
            chain: "seq-es".to_string(),
            supersteps,
            thinning: 0,
            seed: id,
            handle,
            samples: Arc::new(Mutex::new(Vec::new())),
        }
    }

    #[test]
    fn register_get_and_status_json() {
        let pool = ServicePool::start(1, 0);
        let store = JobStore::new(8);
        let record = store.register(record_for(&store, &pool, 4)).unwrap();
        assert_eq!(record.id, 1);
        let fetched = store.get(1).unwrap();
        fetched.handle.wait();
        let status = fetched.status_json();
        assert_eq!(status.get("status").and_then(|v| v.as_str()), Some("done"));
        assert_eq!(status.get("superstep").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(status.get("chain").and_then(|v| v.as_str()), Some("seq-es"));
        assert!(store.get(99).is_none());
        pool.shutdown();
    }

    #[test]
    fn eviction_prefers_oldest_finished_and_refuses_when_all_live() {
        let pool = ServicePool::start(1, 0);
        let store = JobStore::new(2);
        let first = store.register(record_for(&store, &pool, 2)).unwrap();
        let second = store.register(record_for(&store, &pool, 2)).unwrap();
        first.handle.wait();
        second.handle.wait();
        // Full, but finished records may be evicted: oldest (id 1) goes.
        let third = store.register(record_for(&store, &pool, 2)).unwrap();
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        assert_eq!(third.id, 3);
        pool.shutdown();

        // A store whose residents never finish refuses new registrations.
        let stuck_pool = ServicePool::start(1, 0);
        let small = JobStore::new(1);
        // Park a long job so the record stays live.
        let live = small.register(record_for(&small, &stuck_pool, 100_000)).unwrap();
        match small.register(record_for(&small, &stuck_pool, 2)) {
            Err(StoreError::Full { capacity }) => assert_eq!(capacity, 1),
            other => panic!("expected Full, got {:?}", other.map(|r| r.id)),
        }
        live.handle.cancel();
        stuck_pool.shutdown();
    }
}
