//! Fault injection over the persistence layer: every durable step
//! (journal append, fsync, sample/checkpoint write, rename) is failed
//! deterministically through the [`FaultIo`] seam, and the server must
//! degrade — refuse un-durable acknowledgements, absorb post-ack failures,
//! meter everything — without a panic and without acknowledging work it
//! then loses.

use gesmc_serve::{FaultIo, IoOp, PersistIo, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesmc-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u16 = text.split(' ').nth(1).unwrap().parse().unwrap();
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        (key.eq_ignore_ascii_case(name)).then(|| value.trim())
    })
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    body.lines()
        .find(|line| line.starts_with(name) && !line.starts_with('#'))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from scrape")) as u64
}

fn durable_server(tag: &str, io: Arc<FaultIo>) -> (Server, PathBuf) {
    let dir = temp_dir(tag);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 2,
        engine_workers: 1,
        data_dir: Some(dir.clone()),
        checkpoint_every: 5,
        persist_io: Some(io as Arc<dyn PersistIo>),
        ..ServeConfig::default()
    };
    (Server::bind(config).unwrap(), dir)
}

const JOB_BODY: &str = r#"{"generate":{"family":"gnp","edges":200,"nodes":100,"seed":3},"supersteps":40,"thinning":20,"seed":9}"#;

fn wait_for_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200);
        if body.contains("\"done\"") || body.contains("\"failed\"") {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn journal_append_fault_refuses_the_ack_then_recovers() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("journal-append", Arc::clone(&io));
    let addr = server.local_addr();
    let errors_before = metric(addr, "gesmc_persist_errors_total");

    io.fail(IoOp::Append, "jobs.journal", 1);
    let (status, _, body) = post_json(addr, "/v1/jobs", JOB_BODY);
    assert_eq!(status, 503, "un-durable submission must be refused: {body}");
    assert!(body.contains("persistence unavailable"), "{body}");
    assert!(metric(addr, "gesmc_persist_errors_total") > errors_before);

    // The fault expired: the same submission is now journaled and accepted.
    let (status, _, body) = post_json(addr, "/v1/jobs", JOB_BODY);
    assert_eq!(status, 202, "{body}");
    let errors_after_ok = metric(addr, "gesmc_persist_errors_total");
    assert!(errors_after_ok > errors_before, "error counter must be monotone");
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn journal_fsync_fault_refuses_the_ack() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("journal-fsync", Arc::clone(&io));
    let addr = server.local_addr();

    io.fail(IoOp::Fsync, "jobs.journal", 1);
    let (status, _, body) = post_json(addr, "/v1/jobs", JOB_BODY);
    assert_eq!(status, 503, "an un-fsynced ack could be lost; must refuse: {body}");
    assert!(metric(addr, "gesmc_persist_errors_total") >= 1);

    // No acknowledged-then-lost job: nothing was acked, so nothing may
    // linger in the store either.
    let (status, _, _) = get(addr, "/v1/jobs/1");
    assert_eq!(status, 404, "refused submission must not leave a job record");
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn input_spill_fault_refuses_inline_edge_jobs() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("input-spill", Arc::clone(&io));
    let addr = server.local_addr();

    io.fail(IoOp::Write, "input.tmp", 1);
    let body = r#"{"edges":[[0,1],[1,2],[2,3],[3,0],[0,2]],"supersteps":10,"thinning":5}"#;
    let (status, _, text) = post_json(addr, "/v1/jobs", body);
    assert_eq!(status, 503, "job input that cannot be persisted must be refused: {text}");

    io.clear();
    let (status, _, text) = post_json(addr, "/v1/jobs", body);
    assert_eq!(status, 202, "{text}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_spill_faults_degrade_to_in_memory_serving() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("cache-spill", Arc::clone(&io));
    let addr = server.local_addr();

    // Fail both the tmp write and (belt and braces) the rename into the
    // cache directory: the sample must still be computed and served.
    io.fail(IoOp::Write, "cache/", 8);
    io.fail(IoOp::Rename, "cache/", 8);
    let path = "/v1/sample?graph=pld:m=500&algo=par-global-es&supersteps=10";
    let (status, head, first_body) = get(addr, path);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "X-Gesmc-Cache"), Some("miss"));
    assert!(metric(addr, "gesmc_persist_errors_total") >= 1);

    // The in-memory cache still works; the spill failure cost durability,
    // not correctness.
    let (status, head, second_body) = get(addr, path);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "X-Gesmc-Cache"), Some("hit"));
    assert_eq!(first_body, second_body, "hit must serve identical bytes");
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn checkpoint_write_faults_do_not_kill_the_job() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("ckpt-write", Arc::clone(&io));
    let addr = server.local_addr();

    // Fail every checkpoint write (tmp file and rename) for this job.
    io.fail(IoOp::Write, "job.tmp", 1000);
    io.fail(IoOp::Rename, "job.ckpt", 1000);
    let (status, _, body) = post_json(addr, "/v1/jobs", JOB_BODY);
    assert_eq!(status, 202, "{body}");
    let status_body = wait_for_done(addr, 1);
    assert!(
        status_body.contains("\"done\""),
        "checkpoint faults must not fail the job: {status_body}"
    );
    assert!(metric(addr, "gesmc_persist_errors_total") >= 1);
    assert_eq!(metric(addr, "gesmc_persist_checkpoints_total"), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sample_spill_faults_keep_samples_fetchable_in_memory() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("sample-spill", Arc::clone(&io));
    let addr = server.local_addr();

    io.fail(IoOp::Write, "sample-", 1000);
    let (status, _, body) = post_json(addr, "/v1/jobs", JOB_BODY);
    assert_eq!(status, 202, "{body}");
    let status_body = wait_for_done(addr, 1);
    assert!(status_body.contains("\"done\""), "{status_body}");
    let (status, _, sample) = get(addr, "/v1/jobs/1/samples/0");
    assert_eq!(status, 200, "in-memory sample must be served despite spill faults");
    assert!(!sample.is_empty());
    assert!(metric(addr, "gesmc_persist_errors_total") >= 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Bind a server onto an existing data dir (restart; nothing is wiped).
fn durable_server_at(dir: &Path, io: Arc<FaultIo>) -> Server {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        http_workers: 2,
        engine_workers: 1,
        data_dir: Some(dir.to_path_buf()),
        checkpoint_every: 5,
        persist_io: Some(io as Arc<dyn PersistIo>),
        ..ServeConfig::default()
    };
    Server::bind(config).unwrap()
}

#[test]
fn corrupt_cache_spills_rehydrate_as_misses_never_as_wrong_bytes() {
    // The cache rehydration path streams spilled samples through the
    // zero-copy mapped GESMCEL1 view; every kind of damage to the spilled
    // file must surface as a recompute-miss with the identical bytes (seeds
    // derive from the cache key), never as a served wrong sample.
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("corrupt-spill", Arc::clone(&io));
    let addr = server.local_addr();
    let path = "/v1/sample?graph=pld:m=500&algo=par-global-es&supersteps=10";
    let (status, head, original) = get(addr, path);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "X-Gesmc-Cache"), Some("miss"));
    server.shutdown();

    let spill = std::fs::read_dir(dir.join("cache"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|ext| ext == "el"))
        .expect("the sample must have spilled to cache/");
    let pristine = std::fs::read(&spill).unwrap();

    // Restart on the same data dir: the intact spill rehydrates through the
    // mapped view and serves as a hit, bytes bit-identical.
    let server = durable_server_at(&dir, Arc::new(FaultIo::new()));
    let addr = server.local_addr();
    let (status, head, body) = get(addr, path);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "X-Gesmc-Cache"), Some("hit"), "intact spill must rehydrate");
    assert_eq!(body, original, "rehydrated bytes must be bit-identical");
    assert!(metric(addr, "gesmc_persist_cache_rehydrated_total") >= 1);
    server.shutdown();

    // Three damage modes against the mapped view: bad magic (rejected at
    // open), truncation (rejected at open), and a self-loop edge (rejected
    // during the validating stream).
    let bad_magic = {
        let mut b = pristine.clone();
        b[0..8].copy_from_slice(b"NOTMAGIC");
        b
    };
    let truncated = pristine[..pristine.len() - 4].to_vec();
    let self_loop = {
        let mut b = pristine.clone();
        b[24..28].copy_from_slice(&1u32.to_le_bytes());
        b[28..32].copy_from_slice(&1u32.to_le_bytes());
        b
    };
    for (mode, bytes) in
        [("bad magic", bad_magic), ("truncated", truncated), ("self-loop", self_loop)]
    {
        std::fs::write(&spill, &bytes).unwrap();
        let server = durable_server_at(&dir, Arc::new(FaultIo::new()));
        let addr = server.local_addr();
        let (status, head, body) = get(addr, path);
        assert_eq!(status, 200, "{mode}: the sample must be recomputed");
        assert_eq!(
            header(&head, "X-Gesmc-Cache"),
            Some("miss"),
            "{mode}: a corrupt spill must read as a miss"
        );
        assert_eq!(body, original, "{mode}: recomputed bytes must match (seeded)");
        assert!(metric(addr, "gesmc_persist_errors_total") >= 1, "{mode}: must be metered");
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn error_counter_is_monotone_across_fault_bursts() {
    let io = Arc::new(FaultIo::new());
    let (server, dir) = durable_server("monotone", Arc::clone(&io));
    let addr = server.local_addr();

    let mut last = metric(addr, "gesmc_persist_errors_total");
    for round in 0..3 {
        io.fail(IoOp::Append, "jobs.journal", 1);
        let (status, _, _) = post_json(addr, "/v1/jobs", JOB_BODY);
        assert_eq!(status, 503, "round {round}");
        let now = metric(addr, "gesmc_persist_errors_total");
        assert!(now > last, "counter must strictly grow after an injected fault");
        last = now;
    }
    // Fault-free traffic never decreases it.
    let (status, _, _) = post_json(addr, "/v1/jobs", JOB_BODY);
    assert_eq!(status, 202);
    assert!(metric(addr, "gesmc_persist_errors_total") >= last);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
