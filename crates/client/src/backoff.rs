//! Retry pacing: jittered exponential backoff, with `Retry-After` taking
//! precedence when the server names a delay.
//!
//! The delay computation is a pure function of `(policy, attempt, unit)`
//! where `unit` is a uniform draw in `[0, 1)`, so the unit tests pin the
//! exact envelope — exponential ceiling growth, the cap, and the jitter
//! band — without sleeping or sampling.

/// Backoff envelope and the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Ceiling of the first delay, in milliseconds.
    pub base_ms: u64,
    /// Upper bound every delay is clamped to, in milliseconds.
    pub cap_ms: u64,
    /// Total attempts (first try included) before a request is abandoned.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self { base_ms: 100, cap_ms: 5_000, max_attempts: 8 }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (0-based), given a uniform
    /// draw `unit` in `[0, 1)`.  The ceiling doubles per attempt from
    /// [`base_ms`](Self::base_ms) and clamps at [`cap_ms`](Self::cap_ms);
    /// the actual delay is jittered uniformly over the upper half of the
    /// ceiling (`[ceiling/2, ceiling)`), so concurrent clients desynchronise
    /// without ever retrying unreasonably early.
    pub fn delay_ms(&self, attempt: u32, unit: f64) -> u64 {
        let doublings = attempt.min(32);
        let ceiling =
            self.base_ms.checked_shl(doublings).unwrap_or(self.cap_ms).min(self.cap_ms).max(1);
        let half = ceiling / 2;
        let span = (ceiling - half).max(1);
        half + ((span as f64) * unit.clamp(0.0, 0.999_999)) as u64
    }
}

/// The delay a `Retry-After: N` header demands, in milliseconds — honoured
/// exactly, no jitter: the server knows its own drain rate better than any
/// client-side guess.  `None` for absent or non-numeric values (the
/// HTTP-date form is not emitted by this stack).
pub fn retry_after_ms(header: Option<&str>) -> Option<u64> {
    header.and_then(|v| v.trim().parse::<u64>().ok()).map(|secs| secs.saturating_mul(1_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_seconds_are_honoured_exactly() {
        assert_eq!(retry_after_ms(Some("7")), Some(7_000));
        assert_eq!(retry_after_ms(Some("0")), Some(0));
        assert_eq!(retry_after_ms(Some(" 2 ")), Some(2_000));
        assert_eq!(retry_after_ms(Some("soon")), None);
        assert_eq!(retry_after_ms(None), None);
    }

    #[test]
    fn ceiling_doubles_then_caps() {
        let policy = BackoffPolicy { base_ms: 100, cap_ms: 1_000, max_attempts: 8 };
        // unit → 1 gives (almost) the ceiling; unit = 0 gives exactly half.
        for (attempt, ceiling) in [(0u32, 100u64), (1, 200), (2, 400), (3, 800), (4, 1_000)] {
            assert_eq!(policy.delay_ms(attempt, 0.0), ceiling / 2, "attempt {attempt}");
            assert!(policy.delay_ms(attempt, 0.999_999) < ceiling, "attempt {attempt}");
            assert!(policy.delay_ms(attempt, 0.999_999) >= ceiling - ceiling / 64);
        }
        // Far past the cap the delay stays clamped (no shift overflow).
        assert_eq!(policy.delay_ms(60, 0.0), 500);
        assert!(policy.delay_ms(60, 0.999_999) < 1_000);
    }

    #[test]
    fn jitter_stays_inside_the_half_ceiling_band() {
        let policy = BackoffPolicy::default();
        for attempt in 0..10 {
            for unit in [0.0, 0.1, 0.5, 0.9, 0.999_999] {
                let delay = policy.delay_ms(attempt, unit);
                let ceiling =
                    policy.base_ms.checked_shl(attempt).unwrap_or(policy.cap_ms).min(policy.cap_ms);
                assert!(
                    delay >= ceiling / 2 && delay < ceiling.max(1),
                    "attempt {attempt} unit {unit}: {delay} outside [{}, {ceiling})",
                    ceiling / 2
                );
            }
        }
        // Out-of-range units clamp instead of escaping the band.
        assert_eq!(policy.delay_ms(0, -1.0), 50);
        assert!(policy.delay_ms(0, 2.0) < 100);
    }
}
