//! The client error type.

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The client was misconfigured (empty endpoint list, duplicate
    /// endpoints, …).
    Config(String),
    /// A request spec failed client-side validation before anything was
    /// sent (bad graph grammar, bad algorithm spec).
    Spec(String),
    /// The server answered with a definitive 4xx — retrying will not help.
    Api {
        /// The endpoint that answered.
        endpoint: String,
        /// HTTP status code.
        status: u16,
        /// The server's `{"error": …}` message (or raw body).
        message: String,
    },
    /// Every attempt failed; `failures` records one line per failed try.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// `endpoint: reason` per failed attempt, in order.
        failures: Vec<String>,
    },
    /// The server answered 2xx but the body did not have the expected shape.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Config(msg) => write!(f, "client misconfigured: {msg}"),
            ClientError::Spec(msg) => write!(f, "bad request spec: {msg}"),
            ClientError::Api { endpoint, status, message } => {
                write!(f, "{endpoint} answered {status}: {message}")
            }
            ClientError::Exhausted { attempts, failures } => {
                write!(f, "all {attempts} attempts failed")?;
                if let Some(last) = failures.last() {
                    write!(f, " (last: {last})")?;
                }
                Ok(())
            }
            ClientError::Decode(msg) => write!(f, "unexpected response shape: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}
