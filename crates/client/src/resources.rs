//! The typed resources: `Samples`, `Jobs`, `Algorithms`.
//!
//! Each resource is a thin view borrowing the client's endpoint pool —
//! construct them per call (`client.samples().get(…)`), they hold no state
//! of their own.  Samples route by the consistent-hash ring (the same ring
//! the servers forward by, so a well-routed request lands on the node whose
//! cache owns the key); jobs are node-local, so a [`JobRef`] pins the
//! endpoint that accepted the submission; algorithm metadata is identical
//! everywhere, so any healthy node answers.

use crate::error::ClientError;
use crate::pool::{EndpointPool, PoolRequest, PoolResponse};
use gesmc_cluster::{canonical_graph_spec, SampleKey};
use gesmc_core::ChainSpec;
use serde_json::Value;

/// Encode a query value so the serve stack's percent-decoder round-trips
/// it: `%`, `&`, `+`, and space are the only bytes it treats specially.
fn encode_query_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '&' => out.push_str("%26"),
            '+' => out.push_str("%2B"),
            ' ' => out.push_str("%20"),
            other => out.push(other),
        }
    }
    out
}

/// Map a pool response to its body, turning 4xx/5xx into [`ClientError::Api`]
/// with the server's `{"error": …}` message extracted.
fn expect_success(out: PoolResponse) -> Result<PoolResponse, ClientError> {
    if out.response.is_success() {
        return Ok(out);
    }
    let raw = String::from_utf8_lossy(&out.response.body).into_owned();
    let message = serde_json::from_str(&raw)
        .ok()
        .and_then(|v: Value| v.get("error").and_then(|e| e.as_str()).map(str::to_string))
        .unwrap_or(raw);
    Err(ClientError::Api { endpoint: out.endpoint, status: out.response.status, message })
}

fn parse_json(out: &PoolResponse) -> Result<Value, ClientError> {
    let text = std::str::from_utf8(&out.response.body)
        .map_err(|_| ClientError::Decode("response body is not UTF-8".to_string()))?;
    serde_json::from_str(text).map_err(|e| ClientError::Decode(format!("bad JSON: {e}")))
}

fn field_u64(value: &Value, name: &str) -> Result<u64, ClientError> {
    value
        .get(name)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| ClientError::Decode(format!("missing integer field {name:?}")))
}

fn field_str(value: &Value, name: &str) -> Result<String, ClientError> {
    value
        .get(name)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| ClientError::Decode(format!("missing string field {name:?}")))
}

// ---------------------------------------------------------------------------
// Samples
// ---------------------------------------------------------------------------

/// What to sample: a generator spec, an algorithm, a superstep count.
#[derive(Debug, Clone)]
pub struct SampleSpec {
    /// Compact generator grammar, e.g. `pld:m=2000,gamma=2.5`.
    pub graph: String,
    /// Algorithm spec, e.g. `par-global-es?threads=4`.
    pub algo: String,
    /// Supersteps before the sample is taken.
    pub supersteps: u64,
}

impl SampleSpec {
    /// A spec for `graph` with the service defaults (`par-global-es`, 20
    /// supersteps).
    pub fn new(graph: impl Into<String>) -> Self {
        Self { graph: graph.into(), algo: "par-global-es".to_string(), supersteps: 20 }
    }

    /// Replace the algorithm spec.
    pub fn algo(mut self, algo: impl Into<String>) -> Self {
        self.algo = algo.into();
        self
    }

    /// Replace the superstep count.
    pub fn supersteps(mut self, supersteps: u64) -> Self {
        self.supersteps = supersteps;
        self
    }

    /// The cluster key this spec resolves to — the exact key the servers
    /// cache and shard by.  Fails when the graph grammar or the algorithm
    /// spec does not parse (the same validation the server would apply).
    pub fn key(&self) -> Result<SampleKey, ClientError> {
        let params = canonical_graph_spec(&self.graph).map_err(ClientError::Spec)?;
        let chain = ChainSpec::parse(&self.algo)
            .map_err(|e| ClientError::Spec(format!("bad algo spec: {e}")))?;
        Ok(SampleKey::new(params.fingerprint(), chain.slug(), self.supersteps))
    }

    fn path(&self, extra: &str) -> String {
        format!(
            "/v1/sample?graph={}&algo={}&supersteps={}{extra}",
            encode_query_value(&self.graph),
            encode_query_value(&self.algo),
            self.supersteps
        )
    }
}

/// A fetched sample with its provenance headers.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The encoded edge list (binary when fetched with [`Samples::get`],
    /// text when fetched with [`Samples::get_text`]).
    pub bytes: Vec<u8>,
    /// The server's cache verdict: `hit`, `miss`, or `coalesced`.
    pub cache: String,
    /// The seed the sample was generated with (derived from the key, so
    /// identical from every node).
    pub seed: u64,
    /// The endpoint that answered.
    pub endpoint: String,
    /// The trace id this fetch originated (32 hex digits).  The client sets
    /// the sampled flag, so every hop keeps its spans and `gesmc trace`
    /// can reconstruct the request afterwards.
    pub trace_id: String,
}

/// The `Samples` resource: ring-routed one-shot sampling.
pub struct Samples<'a> {
    pub(crate) pool: &'a EndpointPool,
}

impl Samples<'_> {
    fn fetch(&self, spec: &SampleSpec, accept: &str) -> Result<Sample, ClientError> {
        let key = spec.key()?;
        let path = spec.path("");
        // Originate the trace client-side with the sampled flag set: every
        // server that handles a hop keeps its span fragment, so the id
        // returned in [`Sample::trace_id`] is always resolvable afterwards.
        let mut span = gesmc_obs::trace::tracer()
            .start_root_flagged("client_fetch", gesmc_obs::trace::FLAG_SAMPLED);
        span.annotate("path", path.clone());
        let trace_header = span.context().to_header();
        let headers = [("Accept", accept), ("X-Gesmc-Trace", &trace_header)];
        let out = match self
            .pool
            .routed(
                key.ring_hash(),
                &PoolRequest { method: "GET", path: &path, headers: &headers, body: &[] },
            )
            .and_then(expect_success)
        {
            Ok(out) => out,
            Err(e) => {
                span.set_error();
                return Err(e);
            }
        };
        span.annotate("endpoint", out.endpoint.clone());
        let cache = out.response.header("x-gesmc-cache").unwrap_or("unknown").to_string();
        let seed =
            out.response.header("x-gesmc-seed").and_then(|v| v.parse().ok()).unwrap_or_default();
        let trace_id = span.trace_id().to_hex();
        Ok(Sample { bytes: out.response.body, cache, seed, endpoint: out.endpoint, trace_id })
    }

    /// Fetch the sample in the binary edge-list encoding.
    pub fn get(&self, spec: &SampleSpec) -> Result<Sample, ClientError> {
        self.fetch(spec, "application/octet-stream")
    }

    /// Fetch the sample in the text edge-list encoding.
    pub fn get_text(&self, spec: &SampleSpec) -> Result<Sample, ClientError> {
        self.fetch(spec, "text/plain")
    }

    /// Ask the owning node to pre-compute the key in the background.
    /// Returns `true` when the key was already warm, `false` when warming
    /// was kicked off.
    pub fn warm(&self, spec: &SampleSpec) -> Result<bool, ClientError> {
        let key = spec.key()?;
        let path = spec.path("&warm=true");
        let out = expect_success(self.pool.routed(
            key.ring_hash(),
            &PoolRequest { method: "GET", path: &path, headers: &[], body: &[] },
        )?)?;
        let body = parse_json(&out)?;
        Ok(body.get("status").and_then(|v| v.as_str()) == Some("warm"))
    }

    /// The endpoint the ring says owns this spec's key — useful for tests
    /// and tooling that want to compare routed and direct fetches.
    pub fn owner(&self, spec: &SampleSpec) -> Result<String, ClientError> {
        let key = spec.key()?;
        Ok(self.pool.ring().owner(key.ring_hash()).to_string())
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A submitted job: jobs are node-local, so the reference pins the endpoint
/// that accepted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRef {
    /// The node holding the job.
    pub endpoint: String,
    /// The node-local job id.
    pub id: u64,
}

/// A job's status document.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The node holding the job.
    pub endpoint: String,
    /// Node-local job id.
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Canonical chain spec.
    pub chain: String,
    /// Lifecycle label: `queued`, `running`, `done`, `failed`, `cancelled`.
    pub status: String,
    /// Supersteps completed so far.
    pub superstep: u64,
    /// Supersteps requested.
    pub total_supersteps: u64,
    /// Samples emitted so far.
    pub samples: u64,
    /// Failure message, when `status == "failed"`.
    pub error: Option<String>,
}

impl JobStatus {
    /// The job this status describes.
    pub fn job_ref(&self) -> JobRef {
        JobRef { endpoint: self.endpoint.clone(), id: self.id }
    }

    /// Whether the job reached a terminal state.
    pub fn is_finished(&self) -> bool {
        matches!(self.status.as_str(), "done" | "failed" | "cancelled")
    }

    fn parse(endpoint: &str, value: &Value) -> Result<Self, ClientError> {
        Ok(Self {
            endpoint: endpoint.to_string(),
            id: field_u64(value, "id")?,
            name: field_str(value, "name")?,
            chain: field_str(value, "chain")?,
            status: field_str(value, "status")?,
            superstep: field_u64(value, "superstep")?,
            total_supersteps: field_u64(value, "total_supersteps")?,
            samples: field_u64(value, "samples")?,
            error: value.get("error").and_then(|v| v.as_str()).map(str::to_string),
        })
    }
}

/// A job submission: a generated graph (compact grammar), an algorithm, and
/// the chain schedule.
#[derive(Debug, Clone)]
pub struct JobSubmit {
    /// Compact generator grammar, e.g. `pld:m=50000,gamma=2.5`.
    pub graph: String,
    /// Algorithm spec; `None` for the service default.
    pub algo: Option<String>,
    /// Optional human-readable name.
    pub name: Option<String>,
    /// Supersteps to run.
    pub supersteps: u64,
    /// Keep one sample every `thinning` supersteps (0 = final only).
    pub thinning: u64,
    /// Chain seed.
    pub seed: u64,
}

impl JobSubmit {
    /// A submission for `graph` with the service defaults.
    pub fn new(graph: impl Into<String>) -> Self {
        Self { graph: graph.into(), algo: None, name: None, supersteps: 20, thinning: 0, seed: 1 }
    }

    /// Set the algorithm spec.
    pub fn algo(mut self, algo: impl Into<String>) -> Self {
        self.algo = Some(algo.into());
        self
    }

    /// Set the job name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Set the superstep count.
    pub fn supersteps(mut self, supersteps: u64) -> Self {
        self.supersteps = supersteps;
        self
    }

    /// Set the thinning interval.
    pub fn thinning(mut self, thinning: u64) -> Self {
        self.thinning = thinning;
        self
    }

    /// Set the chain seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn body(&self) -> Result<String, ClientError> {
        let params = canonical_graph_spec(&self.graph).map_err(ClientError::Spec)?;
        let mut generate = serde_json::Map::new();
        generate.insert("family".to_string(), Value::String(params.family.clone()));
        generate.insert("edges".to_string(), Value::Number(params.edges as f64));
        generate.insert("nodes".to_string(), Value::Number(params.nodes as f64));
        generate.insert("gamma".to_string(), Value::Number(params.gamma));
        generate.insert("seed".to_string(), Value::Number(params.seed as f64));
        let mut body = serde_json::Map::new();
        body.insert("generate".to_string(), Value::Object(generate));
        if let Some(algo) = &self.algo {
            let chain = ChainSpec::parse(algo)
                .map_err(|e| ClientError::Spec(format!("bad algo spec: {e}")))?;
            body.insert("algorithm".to_string(), Value::String(chain.to_string()));
        }
        if let Some(name) = &self.name {
            body.insert("name".to_string(), Value::String(name.clone()));
        }
        body.insert("supersteps".to_string(), Value::Number(self.supersteps as f64));
        body.insert("thinning".to_string(), Value::Number(self.thinning as f64));
        body.insert("seed".to_string(), Value::Number(self.seed as f64));
        serde_json::to_string(&Value::Object(body))
            .map_err(|e| ClientError::Spec(format!("could not encode body: {e}")))
    }
}

/// The `Jobs` resource: asynchronous randomization jobs.
pub struct Jobs<'a> {
    pub(crate) pool: &'a EndpointPool,
}

impl Jobs<'_> {
    /// Submit a job to any healthy node and return its reference.
    pub fn submit(&self, spec: &JobSubmit) -> Result<JobRef, ClientError> {
        let body = spec.body()?;
        let headers = [("Content-Type", "application/json")];
        let out = expect_success(self.pool.any(&PoolRequest {
            method: "POST",
            path: "/v1/jobs",
            headers: &headers,
            body: body.as_bytes(),
        })?)?;
        let ack = parse_json(&out)?;
        Ok(JobRef { endpoint: out.endpoint, id: field_u64(&ack, "id")? })
    }

    /// The job's current status document.
    pub fn get(&self, job: &JobRef) -> Result<JobStatus, ClientError> {
        let path = format!("/v1/jobs/{}", job.id);
        let out = expect_success(self.pool.at(
            &job.endpoint,
            &PoolRequest { method: "GET", path: &path, headers: &[], body: &[] },
        )?)?;
        JobStatus::parse(&out.endpoint, &parse_json(&out)?)
    }

    /// Request cancellation; returns the acknowledged status label.
    pub fn cancel(&self, job: &JobRef) -> Result<String, ClientError> {
        let path = format!("/v1/jobs/{}", job.id);
        let out = expect_success(self.pool.at(
            &job.endpoint,
            &PoolRequest { method: "DELETE", path: &path, headers: &[], body: &[] },
        )?)?;
        field_str(&parse_json(&out)?, "status")
    }

    /// Every resident job across the whole cluster, one `GET /v1/jobs` per
    /// node.  Unreachable nodes contribute nothing rather than failing the
    /// listing — a partial inventory beats none during a node outage.
    pub fn list(&self) -> Result<Vec<JobStatus>, ClientError> {
        let mut all = Vec::new();
        for endpoint in self.pool.ring().nodes().to_vec() {
            let Ok(out) = self.pool.at(
                &endpoint,
                &PoolRequest { method: "GET", path: "/v1/jobs", headers: &[], body: &[] },
            ) else {
                continue;
            };
            let Ok(out) = expect_success(out) else { continue };
            let body = parse_json(&out)?;
            let jobs = body
                .as_array()
                .ok_or_else(|| ClientError::Decode("job listing is not an array".to_string()))?;
            for job in jobs {
                all.push(JobStatus::parse(&endpoint, job)?);
            }
        }
        Ok(all)
    }

    /// Fetch the `k`-th thinned sample of a job, binary encoding.
    pub fn sample(&self, job: &JobRef, k: usize) -> Result<Vec<u8>, ClientError> {
        let path = format!("/v1/jobs/{}/samples/{k}", job.id);
        let headers = [("Accept", "application/octet-stream")];
        let out = expect_success(self.pool.at(
            &job.endpoint,
            &PoolRequest { method: "GET", path: &path, headers: &headers, body: &[] },
        )?)?;
        Ok(out.response.body)
    }
}

// ---------------------------------------------------------------------------
// Algorithms
// ---------------------------------------------------------------------------

/// One registered randomization algorithm.
#[derive(Debug, Clone)]
pub struct AlgorithmInfo {
    /// Canonical name.
    pub name: String,
    /// Underlying chain implementation.
    pub chain: String,
    /// Accepted aliases.
    pub aliases: Vec<String>,
    /// One-line summary.
    pub summary: String,
    /// Whether the chain preserves the degree sequence exactly.
    pub exact: bool,
    /// Whether the chain runs parallel supersteps.
    pub parallel: bool,
}

/// The `Algorithms` resource: registry metadata (identical on every node).
pub struct Algorithms<'a> {
    pub(crate) pool: &'a EndpointPool,
}

impl Algorithms<'_> {
    /// Every registered algorithm.
    pub fn list(&self) -> Result<Vec<AlgorithmInfo>, ClientError> {
        let out = expect_success(self.pool.any(&PoolRequest {
            method: "GET",
            path: "/v1/algorithms",
            headers: &[],
            body: &[],
        })?)?;
        let body = parse_json(&out)?;
        let entries = body
            .as_array()
            .ok_or_else(|| ClientError::Decode("algorithm listing is not an array".to_string()))?;
        entries
            .iter()
            .map(|entry| {
                Ok(AlgorithmInfo {
                    name: field_str(entry, "name")?,
                    chain: field_str(entry, "chain")?,
                    aliases: entry
                        .get("aliases")
                        .and_then(|v| v.as_array())
                        .map(|a| a.iter().filter_map(|v| v.as_str().map(str::to_string)).collect())
                        .unwrap_or_default(),
                    summary: field_str(entry, "summary")?,
                    exact: entry.get("exact").and_then(|v| v.as_bool()).unwrap_or(false),
                    parallel: entry.get("parallel").and_then(|v| v.as_bool()).unwrap_or(false),
                })
            })
            .collect()
    }

    /// Look up one algorithm by name or alias.
    pub fn get(&self, name: &str) -> Result<Option<AlgorithmInfo>, ClientError> {
        Ok(self
            .list()?
            .into_iter()
            .find(|info| info.name == name || info.aliases.iter().any(|a| a == name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_values_encode_the_decoder_specials() {
        assert_eq!(encode_query_value("pld:m=2000,gamma=2.5"), "pld:m=2000,gamma=2.5");
        assert_eq!(encode_query_value("a&b+c d%e"), "a%26b%2Bc%20d%25e");
    }

    #[test]
    fn sample_specs_resolve_to_the_server_cache_key() {
        let spec = SampleSpec::new("pld:m=2000,seed=9").algo("seq-es").supersteps(30);
        let key = spec.key().unwrap();
        assert_eq!(key.supersteps, 30);
        assert_eq!(key.chain_slug, ChainSpec::parse("seq-es").unwrap().slug());
        // Equivalent spellings map to the same key → the same ring owner.
        let other = SampleSpec::new("pld:seed=9,m=2000").algo("seq-es").supersteps(30);
        assert_eq!(key.ring_hash(), other.key().unwrap().ring_hash());
        assert!(SampleSpec::new("pld:m=").key().is_err());
        assert!(SampleSpec::new("pld").algo("no?such=").key().is_err());
    }

    #[test]
    fn job_submissions_encode_the_generate_body() {
        let body = JobSubmit::new("pld:m=5000,gamma=2.2")
            .name("night-run")
            .supersteps(100)
            .thinning(10)
            .seed(7)
            .body()
            .unwrap();
        let value = serde_json::from_str(&body).unwrap();
        let generate = value.get("generate").unwrap();
        assert_eq!(generate.get("family").and_then(|v| v.as_str()), Some("pld"));
        assert_eq!(generate.get("edges").and_then(|v| v.as_u64()), Some(5000));
        assert_eq!(generate.get("gamma").and_then(|v| v.as_f64()), Some(2.2));
        assert_eq!(value.get("name").and_then(|v| v.as_str()), Some("night-run"));
        assert_eq!(value.get("supersteps").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(value.get("thinning").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(value.get("seed").and_then(|v| v.as_u64()), Some(7));
        assert!(value.get("algorithm").is_none());
    }

    #[test]
    fn job_status_parses_and_classifies() {
        let doc = serde_json::from_str(
            r#"{"id": 3, "name": "j", "chain": "par-global-es", "status": "running",
                "superstep": 5, "total_supersteps": 20, "thinning": 0, "seed": 1,
                "samples": 0}"#,
        )
        .unwrap();
        let status = JobStatus::parse("n1:1", &doc).unwrap();
        assert_eq!(status.job_ref(), JobRef { endpoint: "n1:1".to_string(), id: 3 });
        assert!(!status.is_finished());
        let doc = serde_json::from_str(
            r#"{"id": 3, "name": "j", "chain": "c", "status": "failed",
                "superstep": 5, "total_supersteps": 20, "samples": 0,
                "error": "boom"}"#,
        )
        .unwrap();
        let status = JobStatus::parse("n1:1", &doc).unwrap();
        assert!(status.is_finished());
        assert_eq!(status.error.as_deref(), Some("boom"));
    }
}
