//! `gesmc-client` — the typed cluster client for the sampling service.
//!
//! One [`Client`] holds a pool of serve endpoints and exposes the service
//! as typed resources:
//!
//! * [`Samples`] — one-shot sampling, routed by the same
//!   consistent-hash ring the servers shard by, so a request usually lands
//!   directly on the node whose cache owns the key;
//! * [`Jobs`] — asynchronous jobs, pinned to the node that
//!   accepted them (submit / get / cancel / list / sample);
//! * [`Algorithms`] — registry metadata, answered by
//!   any node.
//!
//! The pool fails over on connect errors and 5xx, ejects repeatedly failing
//! endpoints (with timed probe re-admission), and honours `Retry-After` on
//! 429 — falling back to jittered exponential backoff when the server does
//! not name a delay.  Because sample bytes are bit-identical from every
//! node, failover is invisible to correctness; it only costs cache locality.
//!
//! ```no_run
//! use gesmc_client::{Client, SampleSpec};
//!
//! let client = Client::builder(["127.0.0.1:8080", "127.0.0.1:8081"]).build()?;
//! let sample = client.samples().get(&SampleSpec::new("pld:m=2000").supersteps(40))?;
//! println!("{} bytes from {} ({})", sample.bytes.len(), sample.endpoint, sample.cache);
//! # Ok::<(), gesmc_client::ClientError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod clock;
pub mod error;
mod pool;
pub mod resources;

pub use backoff::{retry_after_ms, BackoffPolicy};
pub use clock::{Clock, SystemClock};
pub use error::ClientError;
pub use gesmc_cluster::{HealthPolicy, PeerStatus, SampleKey};
pub use resources::{
    AlgorithmInfo, Algorithms, JobRef, JobStatus, JobSubmit, Jobs, Sample, SampleSpec, Samples,
};

use gesmc_cluster::HashRing;
use pool::EndpointPool;
use std::sync::Arc;
use std::time::Duration;

/// Configures and constructs a [`Client`].
pub struct ClientBuilder {
    endpoints: Vec<String>,
    backoff: BackoffPolicy,
    health: HealthPolicy,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl ClientBuilder {
    /// Start a builder over the given serve endpoints (`host:port`).
    pub fn new<I, S>(endpoints: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            endpoints: endpoints.into_iter().map(Into::into).collect(),
            backoff: BackoffPolicy::default(),
            health: HealthPolicy::default(),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
        }
    }

    /// Replace the retry pacing policy.
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Replace the endpoint ejection policy.
    pub fn health(mut self, policy: HealthPolicy) -> Self {
        self.health = policy;
        self
    }

    /// Replace the connect and read/write timeouts.
    pub fn timeouts(mut self, connect: Duration, io: Duration) -> Self {
        self.connect_timeout = connect;
        self.io_timeout = io;
        self
    }

    /// Build the client.  Fails on an empty or duplicated endpoint list.
    pub fn build(self) -> Result<Client, ClientError> {
        let ring = HashRing::new(self.endpoints).map_err(|e| ClientError::Config(e.to_string()))?;
        // Seed the jitter stream from the wall clock so concurrent client
        // processes desynchronise; determinism is never needed here (tests
        // pin the backoff envelope through the pure policy function).
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let pool = EndpointPool::with_parts(
            ring,
            self.backoff,
            self.health,
            Box::new(SystemClock::new()),
            EndpointPool::wire_transport(self.connect_timeout, self.io_timeout),
            seed,
        );
        Ok(Client { pool: Arc::new(pool) })
    }
}

/// A thread-safe handle on a cluster of serve endpoints.  Cloning is cheap
/// (the pool — ring, health state, transport — is shared), so one client
/// can be hammered from many threads, as `gesmc loadgen` does.
#[derive(Clone)]
pub struct Client {
    pool: Arc<EndpointPool>,
}

impl Client {
    /// Start building a client over the given endpoints.
    pub fn builder<I, S>(endpoints: I) -> ClientBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ClientBuilder::new(endpoints)
    }

    /// The `Samples` resource.
    pub fn samples(&self) -> Samples<'_> {
        Samples { pool: &self.pool }
    }

    /// The `Jobs` resource.
    pub fn jobs(&self) -> Jobs<'_> {
        Jobs { pool: &self.pool }
    }

    /// The `Algorithms` resource.
    pub fn algorithms(&self) -> Algorithms<'_> {
        Algorithms { pool: &self.pool }
    }

    /// The endpoints this client routes over, sorted.
    pub fn endpoints(&self) -> &[String] {
        self.pool.ring().nodes()
    }

    /// Health of every endpoint the client has talked to.
    pub fn health(&self) -> Vec<(String, PeerStatus)> {
        self.pool.health_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_bad_endpoint_lists() {
        assert!(matches!(
            Client::builder(Vec::<String>::new()).build(),
            Err(ClientError::Config(_))
        ));
        assert!(matches!(Client::builder(["a:1", "a:1"]).build(), Err(ClientError::Config(_))));
        let client = Client::builder(["b:1", "a:1"]).build().unwrap();
        assert_eq!(client.endpoints(), ["a:1", "b:1"]);
        assert!(client.health().is_empty());
    }
}
