//! The multi-endpoint pool: ring routing, failover, and retry pacing.
//!
//! Every request resolves to an ordered candidate list — the ring's
//! preference order for routed requests, a rotating scan for unrouted ones —
//! and walks it under one policy:
//!
//! * **connect errors and 5xx** fail over to the next candidate immediately
//!   and count against the peer's health (consecutive failures eject it);
//! * **429** is backpressure, not ill health: the peer stays healthy, the
//!   pool sleeps for exactly the server's `Retry-After` (or a jittered
//!   exponential delay when absent) and retries the same routing;
//! * **anything else**, including 4xx, is returned to the caller — a
//!   definitive answer that retrying cannot improve.
//!
//! The transport and the clock are both injected, so the whole state machine
//! is unit-tested with a scripted fake server and zero real sleeps.

use crate::backoff::{retry_after_ms, BackoffPolicy};
use crate::clock::Clock;
use crate::error::ClientError;
use gesmc_cluster::{HashRing, HealthPolicy, HealthTracker, PeerStatus, WireError, WireResponse};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One request as the pool sees it: the target endpoint is the pool's
/// decision, everything else is the caller's.
pub(crate) struct PoolRequest<'a> {
    pub method: &'a str,
    pub path: &'a str,
    pub headers: &'a [(&'a str, &'a str)],
    pub body: &'a [u8],
}

/// A response plus the endpoint that produced it.
#[derive(Debug)]
pub(crate) struct PoolResponse {
    pub endpoint: String,
    pub response: WireResponse,
}

pub(crate) type Transport =
    Box<dyn Fn(&str, &PoolRequest<'_>) -> Result<WireResponse, WireError> + Send + Sync>;

pub(crate) struct EndpointPool {
    ring: HashRing,
    backoff: BackoffPolicy,
    health: Mutex<HealthTracker>,
    clock: Box<dyn Clock>,
    transport: Transport,
    /// splitmix64 state feeding backoff jitter.
    jitter: Mutex<u64>,
    /// Rotates the starting endpoint of unrouted requests.
    round_robin: AtomicUsize,
}

impl EndpointPool {
    pub(crate) fn with_parts(
        ring: HashRing,
        backoff: BackoffPolicy,
        health: HealthPolicy,
        clock: Box<dyn Clock>,
        transport: Transport,
        jitter_seed: u64,
    ) -> Self {
        Self {
            ring,
            backoff,
            health: Mutex::new(HealthTracker::new(health)),
            clock,
            transport,
            jitter: Mutex::new(jitter_seed),
            round_robin: AtomicUsize::new(0),
        }
    }

    /// The real-socket transport with the given timeouts.
    pub(crate) fn wire_transport(connect_timeout: Duration, io_timeout: Duration) -> Transport {
        Box::new(move |endpoint, req| {
            gesmc_cluster::request_with_timeouts(
                endpoint,
                req.method,
                req.path,
                req.headers,
                req.body,
                connect_timeout,
                io_timeout,
            )
        })
    }

    pub(crate) fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Health snapshot of every endpoint the pool has talked to.
    pub(crate) fn health_snapshot(&self) -> Vec<(String, PeerStatus)> {
        let now = self.clock.now_ms();
        self.health.lock().expect("health mutex poisoned").snapshot(now)
    }

    /// Execute against the ring's preference order for `key_hash`.
    pub(crate) fn routed(
        &self,
        key_hash: u64,
        req: &PoolRequest<'_>,
    ) -> Result<PoolResponse, ClientError> {
        let order: Vec<String> =
            self.ring.preference(key_hash).into_iter().map(str::to_string).collect();
        self.execute(&order, req)
    }

    /// Execute against all endpoints, starting at a rotating offset so
    /// unrouted traffic (job submits, listings) spreads across the cluster.
    pub(crate) fn any(&self, req: &PoolRequest<'_>) -> Result<PoolResponse, ClientError> {
        let nodes = self.ring.nodes();
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed) % nodes.len();
        let order: Vec<String> =
            (0..nodes.len()).map(|i| nodes[(start + i) % nodes.len()].clone()).collect();
        self.execute(&order, req)
    }

    /// Execute against exactly one endpoint (node-local resources like
    /// jobs); still paced by the 429 policy, but with nowhere to fail over.
    pub(crate) fn at(
        &self,
        endpoint: &str,
        req: &PoolRequest<'_>,
    ) -> Result<PoolResponse, ClientError> {
        self.execute(&[endpoint.to_string()], req)
    }

    fn jitter_unit(&self) -> f64 {
        let mut state = self.jitter.lock().expect("jitter mutex poisoned");
        let draw = gesmc_randx::splitmix64(&mut state);
        (draw >> 11) as f64 / (1u64 << 53) as f64
    }

    fn execute(
        &self,
        order: &[String],
        req: &PoolRequest<'_>,
    ) -> Result<PoolResponse, ClientError> {
        let mut failures: Vec<String> = Vec::new();
        // Endpoints that failed hard during this request; cleared (with a
        // backoff sleep) once the whole order has been exhausted.
        let mut down = vec![false; order.len()];
        let mut attempt = 0u32;
        while attempt < self.backoff.max_attempts {
            let picked = {
                let mut health = self.health.lock().expect("health mutex poisoned");
                let now = self.clock.now_ms();
                order
                    .iter()
                    .enumerate()
                    .find(|(i, e)| !down[*i] && health.is_available(e, now))
                    // Everything left is ejected: try the first untried one
                    // anyway rather than failing without sending a byte.
                    .or_else(|| order.iter().enumerate().find(|(i, _)| !down[*i]))
                    .map(|(i, e)| (i, e.clone()))
            };
            let Some((index, endpoint)) = picked else {
                // Whole order burned this round: reset and pace the retry.
                down.fill(false);
                self.clock.sleep_ms(self.backoff.delay_ms(attempt, self.jitter_unit()));
                attempt += 1;
                continue;
            };
            attempt += 1;
            match (self.transport)(&endpoint, req) {
                Ok(resp) if resp.status == 429 => {
                    // The peer is alive and shedding; honour its pacing.
                    self.health.lock().expect("health mutex poisoned").record_success(&endpoint);
                    let delay = retry_after_ms(resp.header("retry-after"))
                        .unwrap_or_else(|| self.backoff.delay_ms(attempt - 1, self.jitter_unit()));
                    failures.push(format!("{endpoint}: 429, retrying in {delay}ms"));
                    self.clock.sleep_ms(delay);
                }
                Ok(resp) if resp.status >= 500 => {
                    let now = self.clock.now_ms();
                    self.health
                        .lock()
                        .expect("health mutex poisoned")
                        .record_failure(&endpoint, now);
                    down[index] = true;
                    failures.push(format!("{endpoint}: HTTP {}", resp.status));
                }
                Ok(resp) => {
                    self.health.lock().expect("health mutex poisoned").record_success(&endpoint);
                    return Ok(PoolResponse { endpoint, response: resp });
                }
                Err(e) => {
                    let now = self.clock.now_ms();
                    self.health
                        .lock()
                        .expect("health mutex poisoned")
                        .record_failure(&endpoint, now);
                    down[index] = true;
                    failures.push(format!("{endpoint}: {e}"));
                }
            }
        }
        Err(ClientError::Exhausted { attempts: self.backoff.max_attempts, failures })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// A clock that never blocks: sleeps advance it instantly and are
    /// recorded for assertion.
    struct FakeClock {
        now: AtomicU64,
        slept: Mutex<Vec<u64>>,
    }

    impl FakeClock {
        fn new() -> Arc<Self> {
            Arc::new(Self { now: AtomicU64::new(0), slept: Mutex::new(Vec::new()) })
        }
    }

    impl Clock for Arc<FakeClock> {
        fn now_ms(&self) -> u64 {
            self.now.load(Ordering::SeqCst)
        }

        fn sleep_ms(&self, ms: u64) {
            self.now.fetch_add(ms, Ordering::SeqCst);
            self.slept.lock().unwrap().push(ms);
        }
    }

    fn response(status: u16, headers: &[(&str, &str)], body: &[u8]) -> WireResponse {
        WireResponse {
            status,
            headers: headers.iter().map(|(n, v)| (n.to_string(), v.to_string())).collect(),
            body: body.to_vec(),
        }
    }

    fn refused() -> WireError {
        WireError::Connect(std::io::Error::from(std::io::ErrorKind::ConnectionRefused))
    }

    /// A pool over three endpoints whose transport runs `script` and logs
    /// every endpoint contacted.
    #[allow(clippy::type_complexity)]
    fn pool_with(
        script: impl Fn(&str, usize) -> Result<WireResponse, WireError> + Send + Sync + 'static,
    ) -> (EndpointPool, Arc<FakeClock>, Arc<Mutex<Vec<String>>>) {
        let clock = FakeClock::new();
        let calls = Arc::new(Mutex::new(Vec::new()));
        let calls_in = Arc::clone(&calls);
        let counter = AtomicUsize::new(0);
        let transport: Transport = Box::new(move |endpoint, _req| {
            let n = counter.fetch_add(1, Ordering::SeqCst);
            calls_in.lock().unwrap().push(endpoint.to_string());
            script(endpoint, n)
        });
        let pool = EndpointPool::with_parts(
            HashRing::new(["a:1", "b:1", "c:1"]).unwrap(),
            BackoffPolicy { base_ms: 100, cap_ms: 1_000, max_attempts: 6 },
            HealthPolicy { eject_after: 2, probe_after_ms: 5_000 },
            Box::new(Arc::clone(&clock)),
            transport,
            42,
        );
        (pool, clock, calls)
    }

    fn req<'a>() -> PoolRequest<'a> {
        PoolRequest { method: "GET", path: "/healthz", headers: &[], body: &[] }
    }

    #[test]
    fn routed_requests_follow_the_preference_order_and_fail_over() {
        let (pool, _clock, calls) = pool_with(|endpoint, _| {
            if endpoint == "b:1" {
                Ok(response(200, &[], b"ok"))
            } else {
                Err(refused())
            }
        });
        // Find a hash whose preference order starts somewhere other than b.
        let hash = (0..500u64)
            .map(gesmc_randx::mix64)
            .find(|&h| pool.ring().preference(h)[0] != "b:1")
            .unwrap();
        let expected: Vec<String> =
            pool.ring().preference(hash).into_iter().map(str::to_string).collect();
        let out = pool.routed(hash, &req()).unwrap();
        assert_eq!(out.endpoint, "b:1");
        assert_eq!(out.response.body, b"ok");
        let calls = calls.lock().unwrap().clone();
        // The pool walked the preference order until it reached b.
        let reach = expected.iter().position(|e| e == "b:1").unwrap();
        assert_eq!(calls, expected[..=reach].to_vec());
    }

    #[test]
    fn retry_after_is_honoured_exactly_and_the_peer_stays_healthy() {
        let (pool, clock, calls) = pool_with(|_, n| {
            if n == 0 {
                Ok(response(429, &[("retry-after", "7")], b""))
            } else {
                Ok(response(200, &[], b"done"))
            }
        });
        let out = pool.any(&req()).unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(clock.slept.lock().unwrap().as_slice(), &[7_000]);
        // Backpressure retries the same endpoint rather than failing over.
        let calls = calls.lock().unwrap().clone();
        assert_eq!(calls[0], calls[1]);
        assert!(matches!(pool.health_snapshot()[0].1, PeerStatus::Healthy));
    }

    #[test]
    fn missing_retry_after_falls_back_to_jittered_exponential_backoff() {
        let (pool, clock, _calls) = pool_with(|_, n| {
            if n < 3 {
                Ok(response(429, &[], b""))
            } else {
                Ok(response(200, &[], b""))
            }
        });
        pool.any(&req()).unwrap();
        let slept = clock.slept.lock().unwrap().clone();
        assert_eq!(slept.len(), 3);
        // Each delay sits in the jitter band [ceiling/2, ceiling) of its
        // attempt, and the envelope doubles.
        for (i, &ms) in slept.iter().enumerate() {
            let ceiling = 100u64 << i;
            assert!(
                ms >= ceiling / 2 && ms < ceiling,
                "delay {i} = {ms} outside [{}, {ceiling})",
                ceiling / 2
            );
        }
    }

    #[test]
    fn hard_failures_eject_and_exhaust_when_everyone_is_down() {
        let (pool, _clock, calls) = pool_with(|_, _| Err(refused()));
        let err = pool.any(&req()).unwrap_err();
        let ClientError::Exhausted { attempts, failures } = err else {
            panic!("expected Exhausted, got {err}");
        };
        assert_eq!(attempts, 6);
        assert!(!failures.is_empty());
        // All three endpoints were tried (eject_after = 2, so the scan kept
        // cycling through the order before attempts ran out).
        let tried: std::collections::HashSet<String> =
            calls.lock().unwrap().iter().cloned().collect();
        assert_eq!(tried.len(), 3);
        // Six attempts over three peers: the first two revisited peers cross
        // eject_after = 2 and are ejected; the third holds at one failure.
        let snapshot = pool.health_snapshot();
        let ejected =
            snapshot.iter().filter(|(_, s)| matches!(s, PeerStatus::Ejected { .. })).count();
        assert_eq!(snapshot.len(), 3);
        assert_eq!(ejected, 2);
    }

    #[test]
    fn ejected_peer_is_skipped_then_probed_after_the_window() {
        let died = Arc::new(AtomicUsize::new(1)); // a:1 dead while 1
        let died_in = Arc::clone(&died);
        let (pool, clock, calls) = pool_with(move |endpoint, _| {
            if endpoint == "a:1" && died_in.load(Ordering::SeqCst) == 1 {
                Err(refused())
            } else {
                Ok(response(200, &[], b"ok"))
            }
        });
        // Drive a:1 to ejection (eject_after = 2) with direct sends.
        for _ in 0..2 {
            let _ = pool.at("a:1", &req());
        }
        assert!(matches!(pool.health_snapshot()[0].1, PeerStatus::Ejected { .. }));
        // While ejected, unrouted requests skip a:1 entirely.
        calls.lock().unwrap().clear();
        for _ in 0..4 {
            pool.any(&req()).unwrap();
        }
        assert!(calls.lock().unwrap().iter().all(|e| e != "a:1"));
        // Past the probe window a revived a:1 is re-admitted via one probe.
        died.store(0, Ordering::SeqCst);
        clock.now.store(10_000, Ordering::SeqCst);
        calls.lock().unwrap().clear();
        for _ in 0..6 {
            pool.any(&req()).unwrap();
        }
        assert!(calls.lock().unwrap().iter().any(|e| e == "a:1"));
        assert!(pool.health_snapshot().iter().all(|(_, s)| matches!(s, PeerStatus::Healthy)));
    }

    #[test]
    fn definitive_4xx_is_returned_not_retried() {
        let (pool, _clock, calls) =
            pool_with(|_, _| Ok(response(400, &[], br#"{"error":"bad spec"}"#)));
        let out = pool.any(&req()).unwrap();
        assert_eq!(out.response.status, 400);
        assert_eq!(calls.lock().unwrap().len(), 1);
    }
}
