//! Injectable time, so retry pacing and health transitions are unit-tested
//! without a single real sleep.

use std::time::{Duration, Instant};

/// What the pool needs from a clock: a monotonic millisecond reading and a
/// way to wait.  Production uses [`SystemClock`]; tests inject a fake that
/// advances instantly and records every requested sleep.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary fixed origin (monotonic).
    fn now_ms(&self) -> u64;
    /// Block the calling thread for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// The real clock: monotonic [`Instant`] readings and `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}
