//! Out-of-core edge storage for graphs that do not fit in RAM.
//!
//! The rest of the workspace forbids `unsafe`; this crate is the one place
//! it is allowed, confined to the [`mmap`] module's three syscall wrappers
//! (see the safety argument there).  Building blocks:
//!
//! * [`Mmap`] — a dependency-free read-only memory-map wrapper (no `libc`
//!   crate; direct `extern "C"` declarations), with a pure-`std` positioned
//!   read fallback selected automatically off Linux or under
//!   `GESMC_EXMEM_NO_MMAP=1`.
//! * [`MappedEdgeList`] — a zero-copy validated view of a `GESMCEL1` file;
//!   header rules identical to the heap parser, per-slot bounds re-checked
//!   on every access (corruption yields an error, never UB).
//! * [`ExternalEdgeStore`] — a mutable, disk-backed
//!   [`EdgeStore`] serving slot reads/writes through
//!   a bounded LRU chunk cache with dirty-chunk writeback.
//! * [`SeqESExt`] — sequential ES-MC over any `EdgeStore`, drafting switch
//!   batches from the seeded PRNG, sorting them by slot locality, and
//!   applying them in runs — **bit-identical to `seq-es` at the same seed**.
//!
//! The cardinal invariant, property-tested in the workspace's
//! `exmem_equivalence` suite: *the storage backend never changes the sample
//! bytes.*  Budgets, batch caps, and mmap-vs-fallback only move memory
//! traffic around.
//!
//! [`register`] plugs the `seq-es-ext` chain (plus its store-aware factory)
//! into any [`ChainRegistry`], which is how `gesmc_engine::default_registry`
//! makes it selectable from manifests, studies, checkpoints, the CLI, and
//! the HTTP API without special-casing.

#![warn(missing_docs)]

pub mod chain;
pub mod error;
pub mod mapped;
pub mod mmap;
pub mod store;

pub use chain::{SeqESExt, DEFAULT_BATCH_CAP};
pub use error::ExmemError;
pub use mapped::MappedEdgeList;
pub use mmap::{mmap_available, Advice, Mmap};
pub use store::{ExternalEdgeStore, CHUNK_BYTES, CHUNK_EDGES};

use gesmc_core::{
    ChainError, ChainInfo, ChainRegistry, ChainSpec, EdgeSwitching, ParamInfo, ParamKind,
    StoreSwitching, SwitchingConfig,
};
use gesmc_graph::{EdgeListGraph, EdgeStore};

/// Name of the batch-cap parameter of `seq-es-ext`.
pub const PARAM_BATCH: &str = "batch";

/// Parameters accepted by `seq-es-ext`: the common pair plus `batch`.
const SEQ_ES_EXT_PARAMS: &[ParamInfo] = &[
    ParamInfo {
        name: "pl",
        kind: ParamKind::Float,
        default: "0.01",
        doc: "per-switch rejection probability P_L in [0, 1) (G-ES-MC chains; \
              ES-MC-style chains accept and ignore it)",
    },
    ParamInfo {
        name: "prefetch",
        kind: ParamKind::Bool,
        default: "true",
        doc: "software-prefetch pipeline of the sequential hash-set chains (Sec. 5.4; \
              other chains accept and ignore it)",
    },
    ParamInfo {
        name: PARAM_BATCH,
        kind: ParamKind::Int,
        default: "8192",
        doc: "switches decided per sequential store scan (pure performance knob — \
              any value yields bit-identical samples)",
    },
];

fn batch_cap_from_spec(spec: &ChainSpec) -> Result<usize, ChainError> {
    match spec.param(PARAM_BATCH) {
        None => Ok(DEFAULT_BATCH_CAP),
        Some(v) => {
            let raw = v.as_i64().ok_or_else(|| ChainError::BadParam {
                chain: "seq-es-ext".to_string(),
                param: PARAM_BATCH.to_string(),
                message: format!("expected an int, got {v}"),
            })?;
            if raw < 1 {
                return Err(ChainError::BadParam {
                    chain: "seq-es-ext".to_string(),
                    param: PARAM_BATCH.to_string(),
                    message: format!("must be >= 1, got {raw}"),
                });
            }
            Ok(raw as usize)
        }
    }
}

fn seq_es_ext_factory(
    graph: EdgeListGraph,
    config: SwitchingConfig,
    spec: &ChainSpec,
) -> Result<Box<dyn EdgeSwitching + Send>, ChainError> {
    let cap = batch_cap_from_spec(spec)?;
    Ok(Box::new(SeqESExt::from_graph(graph, config).with_batch_cap(cap)))
}

fn seq_es_ext_store_factory(
    store: Box<dyn EdgeStore + Send>,
    config: SwitchingConfig,
    spec: &ChainSpec,
) -> Result<Box<dyn StoreSwitching + Send>, ChainError> {
    let cap = batch_cap_from_spec(spec)?;
    Ok(Box::new(SeqESExt::new(store, config).with_batch_cap(cap)))
}

/// The [`ChainInfo`] descriptor of `seq-es-ext`.
pub fn seq_es_ext_info() -> ChainInfo {
    ChainInfo {
        name: "seq-es-ext",
        chain_name: "SeqESExt",
        aliases: &[],
        summary: "sequential ES-MC over a pluggable edge store: slot-sorted batched I/O, \
                  bit-identical to seq-es; runs out-of-core via --mmap",
        exact: true,
        parallel: false,
        snapshot: true,
        params: SEQ_ES_EXT_PARAMS,
        factory: seq_es_ext_factory,
    }
}

/// Register the `seq-es-ext` chain and its store-aware factory.
pub fn register(registry: &mut ChainRegistry) {
    registry.register(seq_es_ext_info());
    registry.register_store_factory("seq-es-ext", seq_es_ext_store_factory);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_randx::rng_from_seed;

    fn test_graph() -> EdgeListGraph {
        gesmc_graph::gen::gnp(&mut rng_from_seed(3), 80, 0.08)
    }

    #[test]
    fn registers_and_builds_through_the_registry() {
        let mut registry = ChainRegistry::with_core_chains();
        register(&mut registry);
        assert_eq!(registry.store_capable_names(), vec!["seq-es-ext"]);

        let graph = test_graph();
        let degrees = graph.degrees();
        let spec = ChainSpec::parse("seq-es-ext?batch=64&prefetch=off").unwrap();
        let mut chain = registry.build(&spec, graph.clone(), 5).unwrap();
        assert_eq!(chain.name(), "SeqESExt");
        chain.superstep();
        assert_eq!(chain.graph().degrees(), degrees);

        // The store-aware build path resolves through the registry too.
        let mut store_chain = registry.build_store(&spec, Box::new(graph), 5).unwrap();
        store_chain.superstep();
        assert_eq!(store_chain.graph().edges(), chain.graph().edges());
    }

    #[test]
    fn batch_param_is_validated() {
        let mut registry = ChainRegistry::with_core_chains();
        register(&mut registry);
        let graph = test_graph();
        let bad = ChainSpec::parse("seq-es-ext?batch=0").unwrap();
        assert!(matches!(registry.build(&bad, graph.clone(), 1), Err(ChainError::BadParam { .. })));
        let wrong_type = ChainSpec::parse("seq-es-ext?batch=0.5").unwrap();
        assert!(registry.validate(&wrong_type).is_err());
        let ok = ChainSpec::parse("seq-es-ext?batch=32").unwrap();
        assert!(registry.build(&ok, graph, 1).is_ok());
    }
}
