//! `ExternalEdgeStore` — a mutable, disk-backed [`EdgeStore`] with a bounded
//! memory budget.
//!
//! The store owns a *scratch* `GESMCEL1` file and serves slot reads and
//! writes through a small cache of fixed-size chunks (8192 edges = 64 KiB
//! each).  The number of chunks pinned in memory at once is derived from the
//! caller's byte budget (`max(1, budget / 64 KiB)`); everything else lives on
//! disk and is fetched with positioned reads.  Dirty chunks are written back
//! on eviction and on [`EdgeStore::flush`].
//!
//! Deliberately **no memory-mapping here**: a whole-file map counts against
//! the process's virtual address-space limit (`ulimit -v`), which is exactly
//! the resource the out-of-core CI smoke constrains.  Positioned reads keep
//! the address space proportional to the budget, not the graph.
//!
//! Writes go to the scratch file in place (no write-ahead journal): the
//! scratch is a private working copy whose loss on crash simply means
//! restarting from the last checkpoint, the same contract the in-memory
//! engine has.  Durable artifacts (samples, checkpoints) are still written
//! with the workspace's `write(tmp) → fsync → rename` discipline elsewhere.
//!
//! Validation: [`ExternalEdgeStore::create`] streams the input file through
//! the same header and per-edge rules as the heap parser (magic, plausible
//! counts, exact length, no self-loops, endpoints in range).  Duplicate-edge
//! detection needs `O(m)` memory and is intentionally skipped — out-of-core
//! inputs are produced by this workspace's own writers, which never emit
//! duplicates, and the degree-sequence check downstream still holds.

use crate::error::ExmemError;
use crate::mapped::{EDGE_BYTES, HEADER_BYTES};
use gesmc_graph::io::{BinaryEdgeListWriter, BINARY_MAGIC};
use gesmc_graph::{Edge, EdgeStore, Node};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Edges per cache chunk.
pub const CHUNK_EDGES: usize = 8192;
/// Bytes per cache chunk (64 KiB).
pub const CHUNK_BYTES: usize = CHUNK_EDGES * EDGE_BYTES as usize;

struct Chunk {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// A disk-backed, slot-addressed edge store with a bounded chunk cache.
pub struct ExternalEdgeStore {
    file: File,
    path: PathBuf,
    num_nodes: usize,
    num_edges: usize,
    /// chunk index → cached chunk; never holds more than `max_chunks`.
    cache: HashMap<usize, Chunk>,
    max_chunks: usize,
    clock: u64,
    /// Chunks read from disk into the cache (trace-span annotation fodder).
    chunks_loaded: u64,
    /// Dirty chunks written back to disk (evictions and flushes).
    chunks_written: u64,
}

impl std::fmt::Debug for ExternalEdgeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalEdgeStore")
            .field("path", &self.path)
            .field("num_nodes", &self.num_nodes)
            .field("num_edges", &self.num_edges)
            .field("max_chunks", &self.max_chunks)
            .field("cached", &self.cache.len())
            .finish()
    }
}

impl ExternalEdgeStore {
    /// Stream-copy (and validate) the `GESMCEL1` file at `input` into a
    /// fresh scratch file at `scratch`, then open the scratch read-write
    /// under the given byte budget.
    ///
    /// Memory use is bounded by the copy buffer plus the chunk cache; the
    /// input is never loaded or mapped whole.
    pub fn create<P: AsRef<Path>, Q: AsRef<Path>>(
        input: P,
        scratch: Q,
        memory_budget: usize,
    ) -> Result<Self, ExmemError> {
        let input = input.as_ref();
        let scratch = scratch.as_ref();
        let mut src = File::open(input)
            .map_err(|e| ExmemError::Io(format!("cannot open {}: {e}", input.display())))?;
        let file_len = src
            .metadata()
            .map_err(|e| ExmemError::Io(format!("cannot stat {}: {e}", input.display())))?
            .len();
        let (num_nodes, num_edges) = read_and_check_header(&mut src, file_len)?;

        let mut writer = BinaryEdgeListWriter::create(scratch, num_nodes)
            .map_err(|e| ExmemError::Io(format!("cannot create scratch: {e}")))?;
        let mut remaining = num_edges;
        let mut buf = vec![0u8; CHUNK_BYTES];
        let mut slot = 0u64;
        while remaining > 0 {
            let count = remaining.min(CHUNK_EDGES as u64);
            let bytes = &mut buf[..(count * EDGE_BYTES) as usize];
            src.read_exact(bytes).map_err(|e| {
                ExmemError::Format(format!(
                    "truncated payload: header claims {num_edges} edges, data ends at edge {slot}: {e}"
                ))
            })?;
            for i in 0..count as usize {
                let at = i * EDGE_BYTES as usize;
                let u = Node::from_le_bytes(bytes[at..at + 4].try_into().expect("length checked"));
                let v =
                    Node::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("length checked"));
                if u == v {
                    return Err(ExmemError::Format(format!(
                        "self-loop at node {u} (edge {})",
                        slot + i as u64
                    )));
                }
                let e = Edge::new(u, v);
                if u64::from(e.v()) >= num_nodes {
                    return Err(ExmemError::Format(format!(
                        "edge {e} references a node outside [0, {num_nodes})"
                    )));
                }
                writer.push(e).map_err(|e| ExmemError::Io(format!("scratch write: {e}")))?;
            }
            slot += count;
            remaining -= count;
        }
        writer.finish().map_err(|e| ExmemError::Io(format!("scratch finish: {e}")))?;
        Self::adopt(scratch, memory_budget)
    }

    /// Open an existing scratch `GESMCEL1` file read-write under the given
    /// byte budget, trusting its per-edge contents (the header and length
    /// are still validated).
    ///
    /// Used both by [`ExternalEdgeStore::create`] after the validated copy
    /// and by resume paths that have just re-written the scratch from a
    /// checksummed checkpoint.
    pub fn adopt<P: AsRef<Path>>(scratch: P, memory_budget: usize) -> Result<Self, ExmemError> {
        let path = scratch.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| ExmemError::Io(format!("cannot open {}: {e}", path.display())))?;
        let file_len = file
            .metadata()
            .map_err(|e| ExmemError::Io(format!("cannot stat {}: {e}", path.display())))?
            .len();
        let (num_nodes, num_edges) = read_and_check_header(&mut file, file_len)?;
        if num_edges > usize::MAX as u64 || num_nodes > usize::MAX as u64 {
            return Err(ExmemError::Format(format!("implausible edge count {num_edges}")));
        }
        let max_chunks = (memory_budget / CHUNK_BYTES).max(1);
        Ok(Self {
            file,
            path,
            num_nodes: num_nodes as usize,
            num_edges: num_edges as usize,
            cache: HashMap::new(),
            max_chunks,
            clock: 0,
            chunks_loaded: 0,
            chunks_written: 0,
        })
    }

    /// Path of the backing scratch file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Maximum number of chunks the cache may pin (≥ 1).
    pub fn max_chunks(&self) -> usize {
        self.max_chunks
    }

    /// Chunk index that holds `slot`.
    fn chunk_of(slot: usize) -> usize {
        slot / CHUNK_EDGES
    }

    fn chunk_len(&self, chunk: usize) -> usize {
        let start = chunk * CHUNK_EDGES;
        let edges = CHUNK_EDGES.min(self.num_edges - start);
        edges * EDGE_BYTES as usize
    }

    fn chunk_offset(chunk: usize) -> u64 {
        HEADER_BYTES + (chunk * CHUNK_BYTES) as u64
    }

    /// Ensure `chunk` is resident, evicting the least-recently-used chunk
    /// (with writeback if dirty) when the cache is full.
    fn load_chunk(&mut self, chunk: usize) -> std::io::Result<()> {
        self.clock += 1;
        if let Some(c) = self.cache.get_mut(&chunk) {
            c.last_used = self.clock;
            return Ok(());
        }
        while self.cache.len() >= self.max_chunks {
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(&idx, _)| idx)
                .expect("cache is non-empty");
            let c = self.cache.remove(&victim).expect("victim is cached");
            if c.dirty {
                write_all_at(&self.file, &c.data, Self::chunk_offset(victim))?;
                self.chunks_written += 1;
            }
        }
        let len = self.chunk_len(chunk);
        let mut data = vec![0u8; len];
        read_exact_at(&self.file, &mut data, Self::chunk_offset(chunk))?;
        self.chunks_loaded += 1;
        self.cache.insert(chunk, Chunk { data, dirty: false, last_used: self.clock });
        Ok(())
    }

    fn read_slot(&mut self, slot: usize) -> std::io::Result<Edge> {
        let chunk = Self::chunk_of(slot);
        self.load_chunk(chunk)?;
        let data = &self.cache.get(&chunk).expect("just loaded").data;
        let at = (slot - chunk * CHUNK_EDGES) * EDGE_BYTES as usize;
        let u = Node::from_le_bytes(data[at..at + 4].try_into().expect("length checked"));
        let v = Node::from_le_bytes(data[at + 4..at + 8].try_into().expect("length checked"));
        Ok(Edge::new(u, v))
    }

    fn write_slot(&mut self, slot: usize, edge: Edge) -> std::io::Result<()> {
        let chunk = Self::chunk_of(slot);
        self.load_chunk(chunk)?;
        let c = self.cache.get_mut(&chunk).expect("just loaded");
        let at = (slot - chunk * CHUNK_EDGES) * EDGE_BYTES as usize;
        c.data[at..at + 4].copy_from_slice(&edge.u().to_le_bytes());
        c.data[at + 4..at + 8].copy_from_slice(&edge.v().to_le_bytes());
        c.dirty = true;
        Ok(())
    }

    fn flush_dirty(&mut self) -> std::io::Result<()> {
        let mut dirty: Vec<usize> =
            self.cache.iter().filter(|(_, c)| c.dirty).map(|(&idx, _)| idx).collect();
        dirty.sort_unstable();
        for idx in dirty {
            let c = self.cache.get_mut(&idx).expect("listed as cached");
            write_all_at(&self.file, &c.data, Self::chunk_offset(idx))?;
            c.dirty = false;
            self.chunks_written += 1;
        }
        Ok(())
    }
}

impl EdgeStore for ExternalEdgeStore {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn edge(&mut self, slot: usize) -> Edge {
        assert!(slot < self.num_edges, "edge slot {slot} out of bounds ({} edges)", self.num_edges);
        match self.read_slot(slot) {
            Ok(e) => e,
            // The EdgeStore read path has no error channel (chains call it on
            // the hot path); an unreadable scratch file is unrecoverable for
            // the run, so fail loudly with context.
            Err(e) => panic!("external store read of slot {slot} ({}): {e}", self.path.display()),
        }
    }

    fn set_edge(&mut self, slot: usize, edge: Edge) {
        assert!(slot < self.num_edges, "edge slot {slot} out of bounds ({} edges)", self.num_edges);
        if let Err(e) = self.write_slot(slot, edge) {
            panic!("external store write of slot {slot} ({}): {e}", self.path.display());
        }
    }

    fn for_each_edge(&mut self, visit: &mut dyn FnMut(usize, Edge)) {
        // Stream chunk-by-chunk without disturbing the cache: resident
        // (possibly dirty) chunks are authoritative, everything else is read
        // into a transient buffer.
        let mut buf = vec![0u8; CHUNK_BYTES];
        let chunks = self.num_edges.div_ceil(CHUNK_EDGES);
        for chunk in 0..chunks {
            let len = self.chunk_len(chunk);
            let data: &[u8] = if let Some(c) = self.cache.get(&chunk) {
                &c.data
            } else {
                if let Err(e) =
                    read_exact_at(&self.file, &mut buf[..len], Self::chunk_offset(chunk))
                {
                    panic!("external store stream of chunk {chunk} ({}): {e}", self.path.display());
                }
                &buf[..len]
            };
            let base = chunk * CHUNK_EDGES;
            for i in 0..len / EDGE_BYTES as usize {
                let at = i * EDGE_BYTES as usize;
                let u = Node::from_le_bytes(data[at..at + 4].try_into().expect("length checked"));
                let v =
                    Node::from_le_bytes(data[at + 4..at + 8].try_into().expect("length checked"));
                visit(base + i, Edge::new(u, v));
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flush_dirty()
    }

    fn io_stats(&self) -> gesmc_graph::StoreIoStats {
        gesmc_graph::StoreIoStats {
            chunks_loaded: self.chunks_loaded,
            chunks_written: self.chunks_written,
        }
    }
}

fn read_and_check_header(file: &mut File, file_len: u64) -> Result<(u64, u64), ExmemError> {
    if file_len < HEADER_BYTES {
        return Err(ExmemError::Format("truncated header (need 24 bytes)".to_string()));
    }
    let mut header = [0u8; HEADER_BYTES as usize];
    file.read_exact(&mut header).map_err(|e| ExmemError::Io(format!("header read: {e}")))?;
    if &header[0..8] != BINARY_MAGIC {
        return Err(ExmemError::Format(format!(
            "bad magic {:?} (expected {:?})",
            &header[0..8],
            BINARY_MAGIC
        )));
    }
    let num_nodes = u64::from_le_bytes(header[8..16].try_into().expect("length checked"));
    let num_edges = u64::from_le_bytes(header[16..24].try_into().expect("length checked"));
    if num_nodes > u64::from(u32::MAX) + 1 {
        return Err(ExmemError::Format(format!("implausible node count {num_nodes}")));
    }
    let expected = HEADER_BYTES
        .checked_add(
            num_edges
                .checked_mul(EDGE_BYTES)
                .ok_or_else(|| ExmemError::Format(format!("implausible edge count {num_edges}")))?,
        )
        .ok_or_else(|| ExmemError::Format(format!("implausible edge count {num_edges}")))?;
    if file_len < expected {
        let have = (file_len - HEADER_BYTES) / EDGE_BYTES;
        return Err(ExmemError::Format(format!(
            "truncated payload: header claims {num_edges} edges, data ends at edge {have}"
        )));
    }
    if file_len > expected {
        return Err(ExmemError::Format("trailing bytes after the edge payload".to_string()));
    }
    Ok((num_nodes, num_edges))
}

fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

fn write_all_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::write_all_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::io::write_edge_list_binary_file;
    use gesmc_graph::EdgeListGraph;
    use rand::Rng;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gesmc-exmem-store-{name}"))
    }

    fn big_graph(seed: u64, n: u32, m: usize) -> EdgeListGraph {
        let mut rng = gesmc_randx::rng_from_seed(seed);
        gesmc_graph::gen::gnp_with_expected_edges(&mut rng, n as usize, m)
    }

    #[test]
    fn create_validates_and_copies_byte_identically() {
        let g = big_graph(11, 400, 3000);
        let input = temp_path("copy-in.el");
        let scratch = temp_path("copy-scratch.el");
        write_edge_list_binary_file(&input, &g).unwrap();
        let mut store = ExternalEdgeStore::create(&input, &scratch, 1 << 20).unwrap();
        assert_eq!(EdgeStore::num_nodes(&store), g.num_nodes());
        assert_eq!(EdgeStore::num_edges(&store), g.num_edges());
        assert_eq!(std::fs::read(&input).unwrap(), std::fs::read(&scratch).unwrap());
        let copy = store.materialize();
        assert_eq!(copy.edges(), g.edges());
        let _ = std::fs::remove_file(&input);
        let _ = std::fs::remove_file(&scratch);
    }

    #[test]
    fn random_slot_traffic_matches_an_in_memory_model_at_a_one_chunk_budget() {
        let g = big_graph(23, 500, 3 * CHUNK_EDGES + 17);
        let input = temp_path("traffic-in.el");
        let scratch = temp_path("traffic-scratch.el");
        write_edge_list_binary_file(&input, &g).unwrap();
        // Budget below one chunk still pins one chunk — the floor.
        let mut store = ExternalEdgeStore::create(&input, &scratch, 1).unwrap();
        assert_eq!(store.max_chunks(), 1);

        let mut model = g.edges().to_vec();
        let mut rng = gesmc_randx::rng_from_seed(99);
        for _ in 0..20_000 {
            let slot = rng.gen_range(0..model.len());
            if rng.gen::<bool>() {
                let e = Edge::new(rng.gen_range(0..500u32), rng.gen_range(0..500u32));
                if e.is_loop() {
                    continue;
                }
                model[slot] = e;
                store.set_edge(slot, e);
            } else {
                assert_eq!(store.edge(slot), model[slot], "slot {slot}");
            }
        }
        let mut streamed = vec![None; model.len()];
        store.for_each_edge(&mut |i, e| streamed[i] = Some(e));
        for (i, (&m, s)) in model.iter().zip(&streamed).enumerate() {
            assert_eq!(Some(m), *s, "slot {i}");
        }
        // After flush the on-disk payload equals the model exactly (raw
        // bytes: random writes may have produced duplicate edges, which a
        // slot store permits even though the validating reader would not).
        store.flush().unwrap();
        let bytes = std::fs::read(&scratch).unwrap();
        let mut expected = Vec::with_capacity(bytes.len());
        expected.extend_from_slice(BINARY_MAGIC);
        expected.extend_from_slice(&500u64.to_le_bytes());
        expected.extend_from_slice(&(model.len() as u64).to_le_bytes());
        for e in &model {
            expected.extend_from_slice(&e.u().to_le_bytes());
            expected.extend_from_slice(&e.v().to_le_bytes());
        }
        assert_eq!(bytes, expected);
        let _ = std::fs::remove_file(&input);
        let _ = std::fs::remove_file(&scratch);
    }

    #[test]
    fn create_rejects_corrupt_inputs() {
        let g = big_graph(7, 100, 300);
        let mut bytes = Vec::new();
        gesmc_graph::io::write_edge_list_binary(&mut bytes, &g).unwrap();
        let input = temp_path("bad-in.el");
        let scratch = temp_path("bad-scratch.el");

        let expect = |bytes: &[u8], needle: &str| {
            std::fs::write(&input, bytes).unwrap();
            match ExternalEdgeStore::create(&input, &scratch, 1 << 20) {
                Err(e) => assert!(e.to_string().contains(needle), "{e} lacks {needle:?}"),
                Ok(_) => panic!("expected error containing {needle:?}"),
            }
            assert!(!scratch.exists(), "aborted copies must not leave a scratch file");
        };

        expect(&bytes[..10], "truncated header");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        expect(&bad, "bad magic");
        expect(&bytes[..bytes.len() - 3], "truncated payload");
        let mut looped = bytes.clone();
        looped[24..32].copy_from_slice(&[5, 0, 0, 0, 5, 0, 0, 0]);
        expect(&looped, "self-loop at node 5 (edge 0)");
        let mut out_of_range = bytes.clone();
        out_of_range[24..28].copy_from_slice(&1000u32.to_le_bytes());
        expect(&out_of_range, "outside [0, 100)");
        let _ = std::fs::remove_file(&input);
    }

    #[test]
    fn adopt_reopens_a_finished_scratch() {
        let g = big_graph(3, 64, 200);
        let scratch = temp_path("adopt.el");
        write_edge_list_binary_file(&scratch, &g).unwrap();
        let mut store = ExternalEdgeStore::adopt(&scratch, 4 * CHUNK_BYTES).unwrap();
        store.set_edge(0, Edge::new(60, 63));
        assert_eq!(store.edge(0), Edge::new(60, 63));
        store.flush().unwrap();
        drop(store);
        let mut reopened = ExternalEdgeStore::adopt(&scratch, 4 * CHUNK_BYTES).unwrap();
        assert_eq!(reopened.edge(0), Edge::new(60, 63));
        assert_eq!(reopened.edge(1), g.edge(1));
        let _ = std::fs::remove_file(&scratch);
    }
}
