//! A dependency-free read-only memory-map wrapper.
//!
//! The workspace vendors every dependency offline, so instead of pulling in
//! the `libc` crate this module declares the three syscall wrappers it needs
//! (`mmap`, `munmap`, `madvise`) directly via `extern "C"` — they are part of
//! the platform C library every Rust binary on Linux already links.  On other
//! targets (and when `GESMC_EXMEM_NO_MMAP=1` is set, which the test suite
//! uses to cover both paths on one machine), callers fall back to plain
//! `std::fs` positioned reads; see [`crate::MappedEdgeList`].
//!
//! ## Safety argument
//!
//! * Maps are always `PROT_READ` + `MAP_PRIVATE` over a file *we* opened;
//!   the mapping length is captured once at creation and every access is
//!   bounds-checked against it ([`Mmap::as_slice`] hands out a slice of
//!   exactly that length, never a raw pointer).
//! * `munmap` runs in `Drop` with the same pointer/length pair returned by
//!   `mmap`, so the mapping cannot leak or double-free.
//! * Zero-length files are never mapped (`mmap` rejects length 0); callers
//!   handle the empty case before constructing a map.
//! * A file truncated *by another process* while mapped can raise `SIGBUS`
//!   on access.  The files mapped here are samples and spill files owned and
//!   written atomically (`write(tmp)→fsync→rename`) by this workspace, which
//!   never truncates them in place; external interference is outside the
//!   threat model, exactly as it is for the heap readers.

/// Advice passed to [`Mmap::advise`] (`madvise(2)` on Linux, a no-op
/// elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect accesses in random order (`MADV_RANDOM`).
    Random,
    /// Expect sequential accesses (`MADV_SEQUENTIAL`).
    Sequential,
    /// Expect the whole mapping to be needed soon (`MADV_WILLNEED`).
    WillNeed,
}

#[cfg(target_os = "linux")]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MADV_RANDOM: c_int = 1;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
    }
}

/// Whether memory-mapping is available on this build/configuration.
///
/// `false` off Linux and when the `GESMC_EXMEM_NO_MMAP` environment variable
/// is set to anything but `0`/empty (the escape hatch the tests use to
/// exercise the positioned-read fallback everywhere).
pub fn mmap_available() -> bool {
    if !cfg!(target_os = "linux") {
        return false;
    }
    match std::env::var("GESMC_EXMEM_NO_MMAP") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

/// A read-only, private memory map of an entire file.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(target_os = "linux")]
    ptr: *mut core::ffi::c_void,
    len: usize,
    #[cfg(not(target_os = "linux"))]
    _unconstructable: core::convert::Infallible,
}

// SAFETY: the mapping is read-only and private; the underlying pages are
// never written through this handle, so sharing references across threads is
// as safe as sharing `&[u8]`.
#[cfg(target_os = "linux")]
unsafe impl Send for Mmap {}
#[cfg(target_os = "linux")]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `len` bytes of `file` read-only from offset 0.
    ///
    /// Fails with `Unsupported` when mapping is unavailable (non-Linux, or
    /// disabled via `GESMC_EXMEM_NO_MMAP`) and with `InvalidInput` for a
    /// zero-length request; callers fall back to positioned reads.
    #[cfg(target_os = "linux")]
    pub fn map_readonly(file: &std::fs::File, len: usize) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        if !mmap_available() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "memory-mapping disabled via GESMC_EXMEM_NO_MMAP",
            ));
        }
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot map zero bytes",
            ));
        }
        // SAFETY: requests a fresh private read-only mapping of a file we
        // hold open; the kernel picks the address.  Failure is reported via
        // MAP_FAILED and errno, which we surface as an io::Error.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self { ptr, len })
    }

    /// See the Linux variant; always `Unsupported` on other targets.
    #[cfg(not(target_os = "linux"))]
    pub fn map_readonly(_file: &std::fs::File, _len: usize) -> std::io::Result<Self> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "memory-mapping is only wired up on Linux; use the positioned-read fallback",
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    #[cfg(target_os = "linux")]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` readable bytes
        // (established at creation, torn down only in Drop).
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// The mapped bytes (unreachable off Linux — the type cannot be built).
    #[cfg(not(target_os = "linux"))]
    pub fn as_slice(&self) -> &[u8] {
        match self._unconstructable {}
    }

    /// Advise the kernel about the expected access pattern (best-effort).
    pub fn advise(&self, advice: Advice) {
        #[cfg(target_os = "linux")]
        {
            let flag = match advice {
                Advice::Random => sys::MADV_RANDOM,
                Advice::Sequential => sys::MADV_SEQUENTIAL,
                Advice::WillNeed => sys::MADV_WILLNEED,
            };
            // SAFETY: same live ptr/len pair as the mapping; madvise cannot
            // invalidate it.  The result is advisory, so errors are ignored.
            let _ = unsafe { sys::madvise(self.ptr, self.len, flag) };
        }
        #[cfg(not(target_os = "linux"))]
        let _ = advice;
    }
}

#[cfg(target_os = "linux")]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: exactly the pointer/length pair mmap returned; after this
        // the struct is gone, so no dangling slice can be produced.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_a_real_file_and_reads_it_back() {
        if !mmap_available() {
            return;
        }
        let path = std::env::temp_dir().join("gesmc-exmem-mmap-test.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Mmap::map_readonly(&file, payload.len()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(map.as_slice(), &payload[..]);
        map.advise(Advice::Sequential);
        map.advise(Advice::Random);
        map.advise(Advice::WillNeed);
        drop(map);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_length_maps_are_rejected() {
        if !mmap_available() {
            return;
        }
        let path = std::env::temp_dir().join("gesmc-exmem-mmap-empty-test.bin");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(Mmap::map_readonly(&file, 0).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
