//! `SeqESExt` — sequential ES-MC over a pluggable [`EdgeStore`], designed
//! for external (out-of-core) edge storage.
//!
//! The chain draws exactly the same pseudo-random stream as
//! [`SeqES`](gesmc_core::SeqES) (slot pair via
//! `UniformIndex::sample_distinct_pair`, then the direction bit) and makes
//! exactly the same accept/reject decisions, so **its samples are
//! bit-identical to `seq-es` at the same seed** — property-tested in the
//! workspace's `exmem_equivalence` suite.  What changes is only the memory
//! access pattern: instead of touching the edge array and a full hash set at
//! random, switches are drafted into *slot-disjoint batches*, each batch's
//! source slots are gathered in ascending slot order, the legality test is
//! answered by a single sequential scan of the store, and accepted writes are
//! scattered back in ascending slot order.  Chunked stores thus see sorted,
//! run-friendly traffic instead of uniform random I/O.
//!
//! ## Why batching preserves the trajectory
//!
//! * Drafting stops a batch at the first request whose slots collide with a
//!   slot already in the batch (the collided request carries over as the
//!   first member of the next batch — its random draws are already
//!   consumed, in order).  Batches are therefore **slot-disjoint**: every
//!   gathered value equals the value `SeqES` would have observed, because
//!   no earlier request in the batch can rewrite a later request's slots.
//! * The sequential scan answers "does edge `e` exist?" as of the *start*
//!   of the batch.  Within the batch, two delta sets (`inserted`, `erased`)
//!   replay the accepted switches in draft order, so each request sees the
//!   exact hash-set state `SeqES` would have: source edges still present
//!   (ES-MC tests targets against a set that still contains `e1`, `e2`),
//!   plus all earlier insertions, minus all earlier erasures.
//!
//! Each batch costs one `O(m)` scan; with the default batch cap and the
//! birthday bound on slot collisions (≈ `√(2m)` drafts until the first
//! collision), a superstep of `m/2` switches costs `O(m + m·(m/2)/batch)`
//! store-sequential work — the price of never holding the edge set in RAM.
//! The `batch` parameter is a pure performance knob: it must never change
//! the sampled bytes (also property-tested).

use crate::error::ExmemError;
use crate::store::ExternalEdgeStore;
use gesmc_core::{
    switch_targets, ChainSnapshot, EdgeSwitching, SnapshotError, StoreSwitching, SuperstepStats,
    SwitchRequest, SwitchingConfig,
};
use gesmc_graph::{Edge, EdgeListGraph, EdgeStore, PackedEdge};
use gesmc_randx::bounded::UniformIndex;
use gesmc_randx::{rng_from_seed, Rng, RngState};
use rand::Rng as _;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Default batch cap (see [`SeqESExt::with_batch_cap`]).
pub const DEFAULT_BATCH_CAP: usize = 8192;

/// Sequential ES-MC over a pluggable edge store (out-of-core capable).
pub struct SeqESExt {
    /// The store behind a mutex only because [`EdgeSwitching::graph`] and
    /// [`EdgeSwitching::snapshot`] take `&self` while store reads take
    /// `&mut self` (chunk-cache mutation); the hot paths go through
    /// `get_mut()` and never pay for a lock.
    store: Mutex<Box<dyn EdgeStore + Send>>,
    num_nodes: usize,
    num_edges: usize,
    rng: Rng,
    supersteps_done: u64,
    config: SwitchingConfig,
    batch_cap: usize,
}

impl SeqESExt {
    /// Create a chain randomising the edges held by `store`.
    pub fn new(store: Box<dyn EdgeStore + Send>, config: SwitchingConfig) -> Self {
        let num_nodes = store.num_nodes();
        let num_edges = store.num_edges();
        Self {
            store: Mutex::new(store),
            num_nodes,
            num_edges,
            rng: rng_from_seed(config.seed),
            supersteps_done: 0,
            config,
            batch_cap: DEFAULT_BATCH_CAP,
        }
    }

    /// Convenience constructor over the in-memory store.
    pub fn from_graph(graph: EdgeListGraph, config: SwitchingConfig) -> Self {
        Self::new(Box::new(graph), config)
    }

    /// Convenience constructor over an [`ExternalEdgeStore`]: copy the
    /// `GESMCEL1` file at `input` to `scratch` and randomize there under
    /// `memory_budget` bytes of cache.
    pub fn from_file<P: AsRef<Path>, Q: AsRef<Path>>(
        input: P,
        scratch: Q,
        memory_budget: usize,
        config: SwitchingConfig,
    ) -> Result<Self, ExmemError> {
        let store = ExternalEdgeStore::create(input, scratch, memory_budget)?;
        Ok(Self::new(Box::new(store), config))
    }

    /// Set the batch cap (clamped to ≥ 1): the maximum number of drafted
    /// switches decided per sequential store scan.  A pure performance
    /// knob — any cap yields bit-identical samples.
    pub fn with_batch_cap(mut self, cap: usize) -> Self {
        self.batch_cap = cap.max(1);
        self
    }

    /// The configured batch cap.
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// Decide one slot-disjoint batch: gather sources (ascending slots),
    /// answer existence with one sequential scan, replay decisions in draft
    /// order via delta sets, scatter accepted writes (ascending slots).
    /// Returns the number of legal (applied) switches.
    fn apply_batch(&mut self, batch: &[SwitchRequest]) -> usize {
        let store = self.store.get_mut().expect("store mutex poisoned");

        // Gather: every source slot, ascending for chunk locality.
        let mut slots: Vec<usize> = batch.iter().flat_map(|r| [r.i, r.j]).collect();
        slots.sort_unstable();
        let mut values: HashMap<usize, Edge> = HashMap::with_capacity(slots.len());
        for &slot in &slots {
            values.insert(slot, store.edge(slot));
        }

        // Predict: the target edges whose existence the legality test needs.
        let mut candidates: HashSet<PackedEdge> = HashSet::with_capacity(2 * batch.len());
        for r in batch {
            let (e3, e4) = switch_targets(values[&r.i], values[&r.j], r.g);
            if e3.is_loop() || e4.is_loop() {
                continue;
            }
            candidates.insert(e3.pack());
            candidates.insert(e4.pack());
        }

        // Scan: membership of every candidate as of the start of the batch.
        let mut found: HashSet<PackedEdge> = HashSet::with_capacity(candidates.len());
        if !candidates.is_empty() {
            store.for_each_edge(&mut |_, e| {
                let p = e.pack();
                if candidates.contains(&p) {
                    found.insert(p);
                }
            });
        }

        // Decide in draft order.  `inserted`/`erased` replay this batch's
        // accepted switches on top of the scanned membership, giving each
        // request the exact edge-set view the sequential chain would have.
        let mut inserted: HashSet<PackedEdge> = HashSet::new();
        let mut erased: HashSet<PackedEdge> = HashSet::new();
        let mut writes: BTreeMap<usize, Edge> = BTreeMap::new();
        let mut legal = 0usize;
        for r in batch {
            let e1 = values[&r.i];
            let e2 = values[&r.j];
            let (e3, e4) = switch_targets(e1, e2, r.g);
            if e3.is_loop() || e4.is_loop() {
                continue;
            }
            let exists = |p: PackedEdge| {
                inserted.contains(&p) || (found.contains(&p) && !erased.contains(&p))
            };
            // Like SeqES, the test runs with e1/e2 still in the set.
            if exists(e3.pack()) || exists(e4.pack()) {
                continue;
            }
            for p in [e1.pack(), e2.pack()] {
                if !inserted.remove(&p) {
                    erased.insert(p);
                }
            }
            for p in [e3.pack(), e4.pack()] {
                if !erased.remove(&p) {
                    inserted.insert(p);
                }
            }
            writes.insert(r.i, e3);
            writes.insert(r.j, e4);
            legal += 1;
        }

        // Scatter: ascending slot order via the BTreeMap.
        for (slot, edge) in writes {
            store.set_edge(slot, edge);
        }
        legal
    }

    /// Perform `count` uniformly random switches (drafted exactly like
    /// `SeqES`, decided in slot-disjoint batches); returns the number
    /// applied.
    pub fn run_switches(&mut self, count: usize) -> usize {
        let m = self.num_edges;
        if m < 2 {
            return 0;
        }
        let sampler = UniformIndex::new(m as u64);
        let mut legal = 0usize;
        let mut drafted = 0usize;
        let mut pending: Option<SwitchRequest> = None;
        let mut batch: Vec<SwitchRequest> = Vec::with_capacity(self.batch_cap.min(count));
        let mut batch_slots: HashSet<usize> = HashSet::new();
        while drafted < count || pending.is_some() {
            batch.clear();
            batch_slots.clear();
            if let Some(r) = pending.take() {
                batch_slots.insert(r.i);
                batch_slots.insert(r.j);
                batch.push(r);
            }
            while batch.len() < self.batch_cap && drafted < count {
                let (i, j) = sampler.sample_distinct_pair(&mut self.rng);
                let g: bool = self.rng.gen();
                drafted += 1;
                let r = SwitchRequest::new(i as usize, j as usize, g);
                if batch_slots.contains(&r.i) || batch_slots.contains(&r.j) {
                    // Slot collision: the draws are consumed (stream parity
                    // with SeqES), but the request must observe the writes of
                    // this batch — carry it into the next one.
                    pending = Some(r);
                    break;
                }
                batch_slots.insert(r.i);
                batch_slots.insert(r.j);
                batch.push(r);
            }
            legal += self.apply_batch(&batch);
        }
        legal
    }
}

impl EdgeSwitching for SeqESExt {
    fn name(&self) -> &'static str {
        "SeqESExt"
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn graph(&self) -> EdgeListGraph {
        self.store.lock().expect("store mutex poisoned").materialize()
    }

    fn superstep(&mut self) -> SuperstepStats {
        let start = Instant::now();
        let requested = self.num_edges / 2;
        let legal = self.run_switches(requested);
        self.supersteps_done += 1;
        SuperstepStats {
            requested,
            legal,
            illegal: requested - legal,
            rounds: 1,
            round_durations: vec![start.elapsed()],
            duration: start.elapsed(),
        }
    }

    fn snapshot(&self) -> Option<ChainSnapshot> {
        // Materializes the full edge array — the generic checkpoint path.
        // Out-of-core jobs use `snapshot_meta` + `stream_edges` instead.
        let graph = self.graph();
        Some(ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.num_nodes,
            edges: graph.into_edges(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        })
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm(self.name())?;
        // The generic restore path replaces whatever store the chain had
        // with an in-memory one holding the snapshot's edges; resuming onto
        // an *external* store goes through `restore_meta` after the runner
        // has loaded the edge payload into the store.
        let graph = snapshot.graph()?;
        self.num_nodes = graph.num_nodes();
        self.num_edges = graph.num_edges();
        *self.store.get_mut().expect("store mutex poisoned") = Box::new(graph);
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }
}

impl StoreSwitching for SeqESExt {
    fn store_num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn stream_edges(&mut self, visit: &mut dyn FnMut(Edge)) {
        self.store.get_mut().expect("store mutex poisoned").for_each_edge(&mut |_, e| visit(e));
    }

    fn snapshot_meta(&self) -> ChainSnapshot {
        ChainSnapshot {
            algorithm: self.name().to_string(),
            num_nodes: self.num_nodes,
            edges: Vec::new(),
            rng: RngState::capture(&self.rng),
            aux_seed_state: 0,
            supersteps_done: self.supersteps_done,
            seed: self.config.seed,
            loop_probability: self.config.loop_probability,
            prefetch: self.config.prefetch,
        }
    }

    fn restore_meta(&mut self, snapshot: &ChainSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_algorithm("SeqESExt")?;
        if snapshot.num_nodes != self.num_nodes {
            return Err(SnapshotError::Unsupported(
                "checkpoint node count does not match the store contents",
            ));
        }
        self.rng = snapshot.rng.restore();
        self.supersteps_done = snapshot.supersteps_done;
        self.config = snapshot.config();
        Ok(())
    }

    fn flush_store(&mut self) -> std::io::Result<()> {
        self.store.get_mut().expect("store mutex poisoned").flush()
    }

    fn store_io_stats(&self) -> gesmc_graph::StoreIoStats {
        self.store.lock().expect("store mutex poisoned").io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::SeqES;
    use gesmc_graph::gen::gnp;

    fn test_graph(seed: u64) -> EdgeListGraph {
        let mut rng = rng_from_seed(seed);
        gnp(&mut rng, 120, 0.08)
    }

    #[test]
    fn matches_seq_es_bit_for_bit_over_the_in_memory_store() {
        for seed in [0, 1, 42] {
            let graph = test_graph(seed);
            let mut reference = SeqES::new(graph.clone(), SwitchingConfig::with_seed(seed));
            let mut ext = SeqESExt::from_graph(graph, SwitchingConfig::with_seed(seed));
            for step in 0..4 {
                let a = reference.superstep();
                let b = ext.superstep();
                assert_eq!(a.requested, b.requested, "seed {seed} step {step}");
                assert_eq!(a.legal, b.legal, "seed {seed} step {step}");
                assert_eq!(
                    reference.graph().edges(),
                    ext.graph().edges(),
                    "seed {seed} step {step}: slot-exact edge arrays must match"
                );
            }
        }
    }

    #[test]
    fn batch_cap_is_a_pure_performance_knob() {
        let graph = test_graph(7);
        let reference = {
            let mut c = SeqESExt::from_graph(graph.clone(), SwitchingConfig::with_seed(7));
            c.run_supersteps(3);
            c.graph()
        };
        for cap in [1, 2, 3, 17, 100_000] {
            let mut c = SeqESExt::from_graph(graph.clone(), SwitchingConfig::with_seed(7))
                .with_batch_cap(cap);
            c.run_supersteps(3);
            assert_eq!(c.graph().edges(), reference.edges(), "cap {cap}");
        }
    }

    #[test]
    fn runs_over_an_external_store_identically() {
        let graph = test_graph(5);
        let input = std::env::temp_dir().join("gesmc-exmem-chain-in.el");
        let scratch = std::env::temp_dir().join("gesmc-exmem-chain-scratch.el");
        gesmc_graph::io::write_edge_list_binary_file(&input, &graph).unwrap();

        let mut heap = SeqESExt::from_graph(graph, SwitchingConfig::with_seed(5));
        // One-chunk budget: constant traffic through the LRU cache.
        let mut ext = SeqESExt::from_file(&input, &scratch, 1, SwitchingConfig::with_seed(5))
            .unwrap()
            .with_batch_cap(64);
        heap.run_supersteps(3);
        ext.run_supersteps(3);
        assert_eq!(heap.graph().edges(), ext.graph().edges());
        ext.flush_store().unwrap();
        let on_disk = gesmc_graph::io::read_edge_list_binary_file(&scratch).unwrap();
        assert_eq!(on_disk.edges(), heap.graph().edges());
        let _ = std::fs::remove_file(&input);
        let _ = std::fs::remove_file(&scratch);
    }

    #[test]
    fn preserves_degrees_and_simplicity() {
        let graph = test_graph(2);
        let degrees = graph.degrees();
        let mut chain = SeqESExt::from_graph(graph, SwitchingConfig::with_seed(3));
        chain.run_supersteps(5);
        let result = chain.graph();
        assert_eq!(result.degrees(), degrees);
        assert!(result.validate().is_ok());
    }

    #[test]
    fn snapshot_restore_roundtrips_bit_identically() {
        let graph = test_graph(11);
        let mut uninterrupted = SeqESExt::from_graph(graph.clone(), SwitchingConfig::with_seed(4));
        uninterrupted.run_supersteps(6);

        let mut interrupted = SeqESExt::from_graph(graph.clone(), SwitchingConfig::with_seed(4));
        interrupted.run_supersteps(2);
        let snap = interrupted.snapshot().unwrap();
        let mut resumed = SeqESExt::from_graph(test_graph(99), SwitchingConfig::with_seed(1));
        resumed.restore(&snap).unwrap();
        resumed.run_supersteps(4);
        assert_eq!(resumed.graph().edges(), uninterrupted.graph().edges());
    }

    #[test]
    fn restore_meta_keeps_the_store_and_restores_the_counters() {
        let graph = test_graph(13);
        let mut uninterrupted = SeqESExt::from_graph(graph.clone(), SwitchingConfig::with_seed(8));
        uninterrupted.run_supersteps(5);

        let mut interrupted = SeqESExt::from_graph(graph, SwitchingConfig::with_seed(8));
        interrupted.run_supersteps(2);
        let meta = interrupted.snapshot_meta();
        assert!(meta.edges.is_empty());
        // Rebuild a chain over a store that already holds the right edges
        // (the out-of-core resume path: payload loaded first, then meta).
        let mut resumed = SeqESExt::from_graph(interrupted.graph(), SwitchingConfig::with_seed(0));
        resumed.restore_meta(&meta).unwrap();
        resumed.run_supersteps(3);
        assert_eq!(resumed.graph().edges(), uninterrupted.graph().edges());

        // Mismatched algorithm / node count are rejected.
        let mut wrong = SeqESExt::from_graph(test_graph(14), SwitchingConfig::with_seed(0));
        let mut foreign = meta.clone();
        foreign.algorithm = "SeqES".to_string();
        assert!(wrong.restore_meta(&foreign).is_err());
    }

    #[test]
    fn tiny_graphs_do_not_panic_or_touch_the_rng() {
        for edges in [vec![], vec![Edge::new(0, 1)]] {
            let graph = EdgeListGraph::new(2, edges).unwrap();
            let mut chain = SeqESExt::from_graph(graph, SwitchingConfig::with_seed(9));
            let stats = chain.superstep();
            assert_eq!(stats.legal, 0);
            let snap = chain.snapshot().unwrap();
            // The RNG must be untouched: identical to a fresh seed-9 stream.
            assert_eq!(snap.rng, RngState::capture(&rng_from_seed(9)));
        }
    }
}
