//! `MappedEdgeList` — a zero-copy read-only view of a `GESMCEL1` file.
//!
//! Opens a binary edge-list file and validates its header against the same
//! rules as the heap parser (`gesmc_graph::io::read_edge_list_binary`): magic,
//! plausible node count, and an exact `24 + 8·m` byte length (truncated
//! payloads and trailing bytes are both rejected).  Unlike the heap parser it
//! never materializes the edge vector: accesses go straight to the mapped
//! pages (or, on the portability fallback, to positioned file reads), and
//! **bounds are re-checked before every slot access** — a corrupt or
//! shrinking view yields an error, never undefined behaviour.
//!
//! Per-edge validation (self-loops, node range) happens lazily on access,
//! because an `O(m)` up-front sweep is exactly what an out-of-core view
//! exists to avoid; [`MappedEdgeList::for_each_edge`] surfaces the same
//! errors during streaming.  Duplicate detection needs `O(m)` memory and is
//! deliberately *not* performed here — callers that need it materialize
//! through the heap parser.

use crate::error::ExmemError;
use crate::mmap::{Advice, Mmap};
use gesmc_graph::io::BINARY_MAGIC;
use gesmc_graph::{Edge, Node};
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// Header length of the `GESMCEL1` format.
pub const HEADER_BYTES: u64 = 24;
/// Bytes per edge record.
pub const EDGE_BYTES: u64 = 8;

/// How the file's bytes are accessed.
enum Backing {
    /// Whole-file read-only memory map (zero-copy).
    Mapped(Mmap),
    /// Positioned reads against the open file (portability fallback; used
    /// off Linux and under `GESMC_EXMEM_NO_MMAP=1`).
    File(File),
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Mapped(_) => f.write_str("Mapped"),
            Backing::File(_) => f.write_str("File"),
        }
    }
}

/// A validated, read-only, slot-addressed view of a `GESMCEL1` file.
#[derive(Debug)]
pub struct MappedEdgeList {
    backing: Backing,
    num_nodes: u64,
    num_edges: u64,
}

impl MappedEdgeList {
    /// Open and validate a `GESMCEL1` file.
    ///
    /// Prefers a whole-file memory map and silently falls back to positioned
    /// reads when mapping is unavailable; [`MappedEdgeList::is_mapped`]
    /// reports which path was taken.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, ExmemError> {
        let path = path.as_ref();
        let mut file = File::open(path)
            .map_err(|e| ExmemError::Io(format!("cannot open {}: {e}", path.display())))?;
        let file_len = file
            .metadata()
            .map_err(|e| ExmemError::Io(format!("cannot stat {}: {e}", path.display())))?
            .len();

        let mut header = [0u8; HEADER_BYTES as usize];
        if file_len < HEADER_BYTES {
            return Err(ExmemError::Format("truncated header (need 24 bytes)".to_string()));
        }
        file.read_exact(&mut header).map_err(|e| ExmemError::Io(format!("header read: {e}")))?;
        if &header[0..8] != BINARY_MAGIC {
            return Err(ExmemError::Format(format!(
                "bad magic {:?} (expected {:?})",
                &header[0..8],
                BINARY_MAGIC
            )));
        }
        let num_nodes = u64::from_le_bytes(header[8..16].try_into().expect("length checked"));
        let num_edges = u64::from_le_bytes(header[16..24].try_into().expect("length checked"));
        if num_nodes > u64::from(u32::MAX) + 1 {
            return Err(ExmemError::Format(format!("implausible node count {num_nodes}")));
        }
        let expected =
            HEADER_BYTES
                .checked_add(num_edges.checked_mul(EDGE_BYTES).ok_or_else(|| {
                    ExmemError::Format(format!("implausible edge count {num_edges}"))
                })?)
                .ok_or_else(|| ExmemError::Format(format!("implausible edge count {num_edges}")))?;
        if file_len < expected {
            let have = (file_len - HEADER_BYTES) / EDGE_BYTES;
            return Err(ExmemError::Format(format!(
                "truncated payload: header claims {num_edges} edges, data ends at edge {have}"
            )));
        }
        if file_len > expected {
            return Err(ExmemError::Format("trailing bytes after the edge payload".to_string()));
        }

        let backing = match Mmap::map_readonly(&file, file_len as usize) {
            Ok(map) => {
                map.advise(Advice::WillNeed);
                Backing::Mapped(map)
            }
            Err(_) => Backing::File(file),
        };
        Ok(Self { backing, num_nodes, num_edges })
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges as usize
    }

    /// Whether the zero-copy mmap path is active (as opposed to the
    /// positioned-read fallback).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// Read the raw `(u, v)` words of the edge at `slot`, re-checking bounds
    /// against the length captured at open time.
    fn raw_edge(&self, slot: u64) -> Result<(Node, Node), ExmemError> {
        if slot >= self.num_edges {
            return Err(ExmemError::Format(format!(
                "edge slot {slot} out of bounds (file has {} edges)",
                self.num_edges
            )));
        }
        let offset = HEADER_BYTES + slot * EDGE_BYTES;
        let mut buf = [0u8; EDGE_BYTES as usize];
        match &self.backing {
            Backing::Mapped(map) => {
                let bytes = map.as_slice();
                let start = offset as usize;
                // The length was validated at open; re-check anyway so a
                // logic error can only produce an error, never UB.
                let end = start.checked_add(EDGE_BYTES as usize).filter(|&e| e <= bytes.len());
                let Some(end) = end else {
                    return Err(ExmemError::Format(format!(
                        "mapped view too short for edge {slot}"
                    )));
                };
                buf.copy_from_slice(&bytes[start..end]);
            }
            Backing::File(file) => {
                read_exact_at(file, &mut buf, offset)
                    .map_err(|e| ExmemError::Io(format!("read of edge {slot}: {e}")))?;
            }
        }
        let u = Node::from_le_bytes(buf[0..4].try_into().expect("length checked"));
        let v = Node::from_le_bytes(buf[4..8].try_into().expect("length checked"));
        Ok((u, v))
    }

    /// The edge at `slot`, validated against self-loops and the node range.
    pub fn edge(&self, slot: usize) -> Result<Edge, ExmemError> {
        let (u, v) = self.raw_edge(slot as u64)?;
        if u == v {
            return Err(ExmemError::Format(format!("self-loop at node {u} (edge {slot})")));
        }
        let e = Edge::new(u, v);
        if u64::from(e.v()) >= self.num_nodes {
            return Err(ExmemError::Format(format!(
                "edge {e} references a node outside [0, {})",
                self.num_nodes
            )));
        }
        Ok(e)
    }

    /// Stream every edge in slot order, validating each like
    /// [`MappedEdgeList::edge`]; stops at the first invalid record.
    ///
    /// On the mmap path this touches each page exactly once sequentially;
    /// on the fallback path it reads in bounded buffers.
    pub fn for_each_edge(&self, visit: &mut dyn FnMut(usize, Edge)) -> Result<(), ExmemError> {
        if let Backing::Mapped(map) = &self.backing {
            map.advise(Advice::Sequential);
        }
        // Bounded read buffer on the fallback path (8192 edges).
        const CHUNK_EDGES: u64 = 1 << 13;
        let mut chunk = Vec::new();
        let mut slot = 0u64;
        while slot < self.num_edges {
            let count = CHUNK_EDGES.min(self.num_edges - slot);
            match &self.backing {
                Backing::Mapped(map) => {
                    let bytes = map.as_slice();
                    for i in 0..count {
                        let start = (HEADER_BYTES + (slot + i) * EDGE_BYTES) as usize;
                        if start + EDGE_BYTES as usize > bytes.len() {
                            return Err(ExmemError::Format(format!(
                                "mapped view too short for edge {}",
                                slot + i
                            )));
                        }
                        let u = Node::from_le_bytes(
                            bytes[start..start + 4].try_into().expect("length checked"),
                        );
                        let v = Node::from_le_bytes(
                            bytes[start + 4..start + 8].try_into().expect("length checked"),
                        );
                        self.check_and_visit(slot + i, u, v, visit)?;
                    }
                }
                Backing::File(file) => {
                    chunk.resize((count * EDGE_BYTES) as usize, 0);
                    read_exact_at(file, &mut chunk, HEADER_BYTES + slot * EDGE_BYTES)
                        .map_err(|e| ExmemError::Io(format!("read at edge {slot}: {e}")))?;
                    for i in 0..count {
                        let start = (i * EDGE_BYTES) as usize;
                        let u = Node::from_le_bytes(
                            chunk[start..start + 4].try_into().expect("length checked"),
                        );
                        let v = Node::from_le_bytes(
                            chunk[start + 4..start + 8].try_into().expect("length checked"),
                        );
                        self.check_and_visit(slot + i, u, v, visit)?;
                    }
                }
            }
            slot += count;
        }
        Ok(())
    }

    fn check_and_visit(
        &self,
        slot: u64,
        u: Node,
        v: Node,
        visit: &mut dyn FnMut(usize, Edge),
    ) -> Result<(), ExmemError> {
        if u == v {
            return Err(ExmemError::Format(format!("self-loop at node {u} (edge {slot})")));
        }
        let e = Edge::new(u, v);
        if u64::from(e.v()) >= self.num_nodes {
            return Err(ExmemError::Format(format!(
                "edge {e} references a node outside [0, {})",
                self.num_nodes
            )));
        }
        visit(slot as usize, e);
        Ok(())
    }
}

/// Positioned read covering the whole buffer (like `FileExt::read_exact_at`,
/// spelled out so the non-Unix fallback stays `std`-portable).
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_graph::io::write_edge_list_binary_file;
    use gesmc_graph::EdgeListGraph;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gesmc-exmem-mapped-{name}"))
    }

    fn sample_graph() -> EdgeListGraph {
        EdgeListGraph::new(6, vec![Edge::new(4, 1), Edge::new(0, 5), Edge::new(2, 3)]).unwrap()
    }

    #[test]
    fn opens_and_reads_slots_in_order() {
        let g = sample_graph();
        let path = temp_path("ok.el");
        write_edge_list_binary_file(&path, &g).unwrap();
        let view = MappedEdgeList::open(&path).unwrap();
        assert_eq!(view.num_nodes(), 6);
        assert_eq!(view.num_edges(), 3);
        for (i, &e) in g.edges().iter().enumerate() {
            assert_eq!(view.edge(i).unwrap(), e);
        }
        let mut streamed = Vec::new();
        view.for_each_edge(&mut |i, e| streamed.push((i, e))).unwrap();
        assert_eq!(streamed.len(), 3);
        assert_eq!(streamed[1], (1, Edge::new(0, 5)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_bounds_slots_error_never_ub() {
        let path = temp_path("bounds.el");
        write_edge_list_binary_file(&path, &sample_graph()).unwrap();
        let view = MappedEdgeList::open(&path).unwrap();
        let err = view.edge(3).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
        let err = view.edge(usize::MAX).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_files_are_rejected_at_open() {
        let g = sample_graph();
        let path = temp_path("corrupt.el");
        let mut bytes = Vec::new();
        gesmc_graph::io::write_edge_list_binary(&mut bytes, &g).unwrap();

        let expect = |bytes: &[u8], needle: &str| {
            std::fs::write(&path, bytes).unwrap();
            match MappedEdgeList::open(&path) {
                Err(e) => assert!(e.to_string().contains(needle), "{e} lacks {needle:?}"),
                Ok(_) => panic!("expected error containing {needle:?}"),
            }
        };

        expect(b"GESMCEL1", "truncated header");
        expect(b"NOTMAGIC\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0", "bad magic");
        expect(&bytes[..bytes.len() - 4], "truncated payload");
        let mut padded = bytes.clone();
        padded.push(0xFF);
        expect(&padded, "trailing bytes");
        let mut forged = bytes.clone();
        forged[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        expect(&forged, "implausible edge count");
        let mut big_n = bytes.clone();
        big_n[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        expect(&big_n, "implausible node count");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn per_edge_corruption_surfaces_on_access() {
        let g = sample_graph();
        let path = temp_path("lazy.el");
        let mut bytes = Vec::new();
        gesmc_graph::io::write_edge_list_binary(&mut bytes, &g).unwrap();
        // Slot 1 becomes a self-loop; slot 2 an out-of-range endpoint.
        bytes[32..40].copy_from_slice(&[2, 0, 0, 0, 2, 0, 0, 0]);
        bytes[40..44].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let view = MappedEdgeList::open(&path).unwrap();
        assert!(view.edge(0).is_ok());
        assert!(view.edge(1).unwrap_err().to_string().contains("self-loop"));
        assert!(view.edge(2).unwrap_err().to_string().contains("outside"));
        let mut seen = 0;
        let err = view.for_each_edge(&mut |_, _| seen += 1).unwrap_err();
        assert_eq!(seen, 1, "streaming stops at the first invalid record");
        assert!(err.to_string().contains("self-loop"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_graphs_open_on_both_backings() {
        let path = temp_path("empty.el");
        write_edge_list_binary_file(&path, &EdgeListGraph::new(0, vec![]).unwrap()).unwrap();
        let view = MappedEdgeList::open(&path).unwrap();
        assert_eq!(view.num_edges(), 0);
        // 24-byte files cannot be mapped portably as edge payloads are empty;
        // whichever backing was chosen, streaming visits nothing.
        view.for_each_edge(&mut |_, _| panic!("no edges")).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
