//! Error type shared by the out-of-core views and stores.

use std::fmt;

/// Errors surfaced by the `gesmc-exmem` crate.
#[derive(Debug)]
pub enum ExmemError {
    /// The underlying file could not be read or written.
    Io(String),
    /// The file's bytes violate the `GESMCEL1` format rules.
    Format(String),
}

impl fmt::Display for ExmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExmemError::Io(msg) => write!(f, "i/o error: {msg}"),
            ExmemError::Format(msg) => write!(f, "invalid GESMCEL1 data: {msg}"),
        }
    }
}

impl std::error::Error for ExmemError {}
