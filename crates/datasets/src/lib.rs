//! Dataset families used in the paper's evaluation (Sec. 6).
//!
//! * [`syn_gnp`] — *SynGnp*: Gilbert `G(n, p)` graphs for varying node counts
//!   and edge probabilities (used by Fig. 7 to study the influence of the
//!   average degree at a fixed edge budget).
//! * [`syn_pld`] — *SynPld*: power-law degree sequences `Pld([1..Δ], γ)` with
//!   `Δ = n^{1/(γ−1)}`, materialised with Havel–Hakimi (used by Figs. 2 and 8
//!   to study the influence of the degree exponent).
//! * [`netrep_like`] — a synthetic stand-in for the *NetRep* corpus of
//!   real-world graphs.  The original evaluation downloads ~600 graphs from
//!   the network repository; since no external data can be shipped here, we
//!   generate a deterministic corpus that spans the same ranges of size,
//!   density, maximum degree and degree skew (road-like near-regular graphs,
//!   power-law graphs with hubs, small dense graphs, …).  The figures that
//!   iterate over NetRep (Figs. 3–6, 9) iterate over this corpus instead;
//!   DESIGN.md documents why this preserves the qualitative behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod netrep_like;
pub mod syn_gnp;
pub mod syn_pld;

pub use netrep_like::{netrep_corpus, netrep_sample, CorpusGraph, GraphFamily};
pub use syn_gnp::{
    syn_gnp_graph, syn_gnp_stream, syn_gnp_sweep, write_syn_gnp_binary, GnpInstance,
};
pub use syn_pld::{syn_pld_graph, syn_pld_sweep, PldInstance};
