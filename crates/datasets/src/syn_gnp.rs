//! The *SynGnp* dataset: `G(n, p)` graphs for varying `n` and `p`.

use gesmc_graph::gen::gnp_with_expected_edges;
use gesmc_graph::EdgeListGraph;
use gesmc_randx::rng_from_seed;

/// One instance of the SynGnp sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpInstance {
    /// Number of nodes.
    pub n: usize,
    /// Expected number of edges.
    pub m: usize,
    /// Resulting expected average degree `2m / n`.
    pub avg_degree: f64,
}

/// Generate one SynGnp graph with roughly `m` edges on `n` nodes.
pub fn syn_gnp_graph(seed: u64, n: usize, m: usize) -> EdgeListGraph {
    let mut rng = rng_from_seed(seed ^ 0x5919_6e70);
    gnp_with_expected_edges(&mut rng, n, m)
}

/// The parameter sweep of Fig. 7: for each edge budget `m ∈ {2^k}` the average
/// degree is varied by shrinking the node count, stopping once the graph would
/// be denser than a complete graph.
pub fn syn_gnp_sweep(edge_budgets: &[usize], avg_degrees: &[f64]) -> Vec<GnpInstance> {
    let mut out = Vec::new();
    for &m in edge_budgets {
        for &d in avg_degrees {
            if d <= 0.0 {
                continue;
            }
            let n = ((2.0 * m as f64) / d).round() as usize;
            if n < 2 {
                continue;
            }
            // Skip configurations denser than a complete graph.
            let max_edges = n * (n - 1) / 2;
            if m > max_edges {
                continue;
            }
            out.push(GnpInstance { n, m, avg_degree: d });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_are_simple_and_close_to_target_size() {
        let g = syn_gnp_graph(1, 2000, 8000);
        assert!(g.validate().is_ok());
        let m = g.num_edges() as f64;
        assert!(m > 7000.0 && m < 9000.0, "m = {m}");
    }

    #[test]
    fn sweep_respects_density_limit() {
        let sweep = syn_gnp_sweep(&[1 << 10, 1 << 12], &[4.0, 16.0, 64.0, 1024.0]);
        assert!(!sweep.is_empty());
        for inst in &sweep {
            let max_edges = inst.n * (inst.n - 1) / 2;
            assert!(inst.m <= max_edges, "{inst:?} denser than complete graph");
            let implied = 2.0 * inst.m as f64 / inst.n as f64;
            assert!((implied - inst.avg_degree).abs() / inst.avg_degree < 0.2);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = syn_gnp_graph(7, 500, 2000);
        let b = syn_gnp_graph(7, 500, 2000);
        assert_eq!(a.canonical_edges(), b.canonical_edges());
        let c = syn_gnp_graph(8, 500, 2000);
        assert_ne!(a.canonical_edges(), c.canonical_edges());
    }
}
