//! The *SynGnp* dataset: `G(n, p)` graphs for varying `n` and `p`.

use gesmc_graph::gen::{gnp_stream, gnp_with_expected_edges};
use gesmc_graph::io::{BinaryEdgeListWriter, IoError};
use gesmc_graph::{Edge, EdgeListGraph};
use gesmc_randx::rng_from_seed;
use std::path::Path;

/// One instance of the SynGnp sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpInstance {
    /// Number of nodes.
    pub n: usize,
    /// Expected number of edges.
    pub m: usize,
    /// Resulting expected average degree `2m / n`.
    pub avg_degree: f64,
}

/// Generate one SynGnp graph with roughly `m` edges on `n` nodes.
pub fn syn_gnp_graph(seed: u64, n: usize, m: usize) -> EdgeListGraph {
    let mut rng = rng_from_seed(seed ^ 0x5919_6e70);
    gnp_with_expected_edges(&mut rng, n, m)
}

/// Stream the edges of [`syn_gnp_graph`] without materialising the graph —
/// same seed derivation, same draws, same slot order, so collecting the
/// emitted edges reproduces `syn_gnp_graph(seed, n, m)` exactly.
pub fn syn_gnp_stream(seed: u64, n: usize, m: usize, emit: impl FnMut(Edge)) {
    let mut rng = rng_from_seed(seed ^ 0x5919_6e70);
    if n < 2 {
        return;
    }
    let possible = n as f64 * (n as f64 - 1.0) / 2.0;
    let p = (m as f64 / possible).min(1.0);
    gnp_stream(&mut rng, n, p, emit);
}

/// Write one SynGnp graph straight to a binary `GESMCEL1` file in bounded
/// memory: edges stream from the generator through a
/// [`BinaryEdgeListWriter`] (temp file, final in-place header patch, atomic
/// rename), never forming an in-memory edge list.  Returns the edge count.
///
/// Byte-identical to `write_edge_list_binary_file(path,
/// &syn_gnp_graph(seed, n, m))` — the out-of-core CI smoke relies on that.
pub fn write_syn_gnp_binary(
    path: impl AsRef<Path>,
    seed: u64,
    n: usize,
    m: usize,
) -> Result<u64, IoError> {
    let mut writer = BinaryEdgeListWriter::create(path, n as u64)?;
    let mut push_err = None;
    syn_gnp_stream(seed, n, m, |edge| {
        if push_err.is_none() {
            push_err = writer.push(edge).err();
        }
    });
    if let Some(e) = push_err {
        return Err(e);
    }
    writer.finish()
}

/// The parameter sweep of Fig. 7: for each edge budget `m ∈ {2^k}` the average
/// degree is varied by shrinking the node count, stopping once the graph would
/// be denser than a complete graph.
pub fn syn_gnp_sweep(edge_budgets: &[usize], avg_degrees: &[f64]) -> Vec<GnpInstance> {
    let mut out = Vec::new();
    for &m in edge_budgets {
        for &d in avg_degrees {
            if d <= 0.0 {
                continue;
            }
            let n = ((2.0 * m as f64) / d).round() as usize;
            if n < 2 {
                continue;
            }
            // Skip configurations denser than a complete graph.
            let max_edges = n * (n - 1) / 2;
            if m > max_edges {
                continue;
            }
            out.push(GnpInstance { n, m, avg_degree: d });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_are_simple_and_close_to_target_size() {
        let g = syn_gnp_graph(1, 2000, 8000);
        assert!(g.validate().is_ok());
        let m = g.num_edges() as f64;
        assert!(m > 7000.0 && m < 9000.0, "m = {m}");
    }

    #[test]
    fn sweep_respects_density_limit() {
        let sweep = syn_gnp_sweep(&[1 << 10, 1 << 12], &[4.0, 16.0, 64.0, 1024.0]);
        assert!(!sweep.is_empty());
        for inst in &sweep {
            let max_edges = inst.n * (inst.n - 1) / 2;
            assert!(inst.m <= max_edges, "{inst:?} denser than complete graph");
            let implied = 2.0 * inst.m as f64 / inst.n as f64;
            assert!((implied - inst.avg_degree).abs() / inst.avg_degree < 0.2);
        }
    }

    #[test]
    fn stream_and_binary_writer_match_the_in_memory_generator() {
        let graph = syn_gnp_graph(5, 400, 1200);
        let mut streamed = Vec::new();
        syn_gnp_stream(5, 400, 1200, |e| streamed.push(e));
        assert_eq!(streamed, graph.edges(), "stream must emit the same slot order");

        let dir = std::env::temp_dir().join("gesmc-syn-gnp-binary");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let streamed_path = dir.join("streamed.el");
        let control_path = dir.join("control.el");
        let written = write_syn_gnp_binary(&streamed_path, 5, 400, 1200).unwrap();
        assert_eq!(written, graph.num_edges() as u64);
        gesmc_graph::io::write_edge_list_binary_file(&control_path, &graph).unwrap();
        assert_eq!(
            std::fs::read(&streamed_path).unwrap(),
            std::fs::read(&control_path).unwrap(),
            "streamed file must be byte-identical to the in-memory writer"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = syn_gnp_graph(7, 500, 2000);
        let b = syn_gnp_graph(7, 500, 2000);
        assert_eq!(a.canonical_edges(), b.canonical_edges());
        let c = syn_gnp_graph(8, 500, 2000);
        assert_ne!(a.canonical_edges(), c.canonical_edges());
    }
}
