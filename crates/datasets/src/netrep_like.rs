//! A synthetic stand-in for the NetRep corpus of real-world graphs.
//!
//! The paper's Figs. 3–6 and 9 iterate over hundreds of graphs from the
//! network repository, whose role in the evaluation is purely structural: they
//! cover a wide range of sizes (10³–10⁹ edges), densities, maximum degrees
//! and degree skews.  This module generates a deterministic corpus covering
//! the same axes with four structural families:
//!
//! * **RoadLike** — near-regular, very sparse graphs (average degree ≈ 2–3,
//!   tiny maximum degree), standing in for road networks such as
//!   `inf-road-usa`;
//! * **PowerLaw** — heavy-tailed degree sequences with large hubs, standing in
//!   for social/web graphs such as `soc-twitter` or `web-wikipedia`;
//! * **Dense** — small graphs with high average degree, standing in for
//!   biological matrices such as `bio-human-gene1`;
//! * **Mesh** — moderate-degree `G(n, p)` graphs, standing in for
//!   collaboration and communication networks.
//!
//! Every corpus entry records its family and the seed used, so experiments are
//! reproducible and results can be grouped by family.

use gesmc_graph::gen::{gnp, havel_hakimi, powerlaw_degree_sequence, PowerlawConfig};
use gesmc_graph::{DegreeSequence, EdgeListGraph};
use gesmc_randx::rng_from_seed;

/// Structural family of a corpus graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// Near-regular, very sparse (road-network-like).
    RoadLike,
    /// Heavy-tailed power-law degrees (social/web-like).
    PowerLaw,
    /// Small but dense (biological-matrix-like).
    Dense,
    /// Moderate-degree Erdős–Rényi (collaboration-like).
    Mesh,
}

impl GraphFamily {
    /// All families, in a fixed order.
    pub const ALL: [GraphFamily; 4] =
        [GraphFamily::RoadLike, GraphFamily::PowerLaw, GraphFamily::Dense, GraphFamily::Mesh];

    /// Short label used in benchmark CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            GraphFamily::RoadLike => "road-like",
            GraphFamily::PowerLaw => "power-law",
            GraphFamily::Dense => "dense",
            GraphFamily::Mesh => "mesh",
        }
    }
}

/// A graph of the synthetic corpus together with its provenance.
#[derive(Debug, Clone)]
pub struct CorpusGraph {
    /// Descriptive name (family + size), e.g. `power-law-16384`.
    pub name: String,
    /// Structural family.
    pub family: GraphFamily,
    /// The graph itself.
    pub graph: EdgeListGraph,
}

impl CorpusGraph {
    /// Number of edges (convenience).
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Generate one corpus graph of the given family with roughly `target_edges`
/// edges.
pub fn family_graph(seed: u64, family: GraphFamily, target_edges: usize) -> CorpusGraph {
    let mut rng = rng_from_seed(seed ^ 0xC0FF_EE00);
    let graph = match family {
        GraphFamily::RoadLike => {
            // Average degree ~2.4 (paths plus occasional intersections):
            // realised as a near-regular degree sequence of 2s and 3s.
            let n = (target_edges as f64 / 1.2).round().max(8.0) as usize;
            let mut degrees: Vec<u32> = (0..n).map(|i| if i % 5 == 0 { 3 } else { 2 }).collect();
            if degrees.iter().map(|&d| d as u64).sum::<u64>() % 2 == 1 {
                degrees[0] += 1;
            }
            let seq = DegreeSequence::new(degrees);
            havel_hakimi(&seq).expect("near-regular sequence is graphical")
        }
        GraphFamily::PowerLaw => {
            // γ = 2.1 gives average degree ≈ 3–5 and large hubs.
            let gamma = 2.1;
            let n = (target_edges as f64 / 2.2).round().max(16.0) as usize;
            let seq = powerlaw_degree_sequence(&mut rng, &PowerlawConfig::paper(n, gamma));
            havel_hakimi(&seq).expect("sampled sequence is graphical")
        }
        GraphFamily::Dense => {
            // Density ≈ 0.3 on a small node count.
            let n = ((2.0 * target_edges as f64 / 0.3).sqrt().round() as usize).max(8);
            gnp(&mut rng, n, 0.3)
        }
        GraphFamily::Mesh => {
            // Average degree ≈ 16.
            let n = (target_edges as f64 / 8.0).round().max(16.0) as usize;
            let p = (16.0 / (n as f64 - 1.0)).min(1.0);
            gnp(&mut rng, n, p)
        }
    };
    CorpusGraph { name: format!("{}-{}", family.label(), target_edges), family, graph }
}

/// Generate the full corpus: every family crossed with a geometric ladder of
/// edge-count targets from `min_edges` to `max_edges` (both rounded to powers
/// of two).
pub fn netrep_corpus(seed: u64, min_edges: usize, max_edges: usize) -> Vec<CorpusGraph> {
    let mut out = Vec::new();
    let mut target = min_edges.next_power_of_two().max(64);
    while target <= max_edges {
        for (i, &family) in GraphFamily::ALL.iter().enumerate() {
            out.push(family_graph(seed.wrapping_add(i as u64) ^ target as u64, family, target));
        }
        target *= 4;
    }
    out
}

/// A small sample of the corpus, one graph per family, mirroring the
/// hand-picked sample of graphs in the paper's Fig. 4 table.
pub fn netrep_sample(seed: u64, target_edges: usize) -> Vec<CorpusGraph> {
    GraphFamily::ALL
        .iter()
        .enumerate()
        .map(|(i, &family)| family_graph(seed.wrapping_add(i as u64), family, target_edges))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_graphs_have_expected_shape() {
        let road = family_graph(1, GraphFamily::RoadLike, 4096);
        assert!(road.graph.validate().is_ok());
        assert!(road.graph.average_degree() < 4.0);
        assert!(road.graph.max_degree() <= 4);

        let pl = family_graph(1, GraphFamily::PowerLaw, 4096);
        assert!(pl.graph.validate().is_ok());
        assert!(
            pl.graph.max_degree() as f64 > 4.0 * pl.graph.average_degree(),
            "power-law family should have hubs: max {} avg {}",
            pl.graph.max_degree(),
            pl.graph.average_degree()
        );

        let dense = family_graph(1, GraphFamily::Dense, 4096);
        assert!(dense.graph.validate().is_ok());
        assert!(dense.graph.density() > 0.15, "density {}", dense.graph.density());

        let mesh = family_graph(1, GraphFamily::Mesh, 4096);
        assert!(mesh.graph.validate().is_ok());
        let d = mesh.graph.average_degree();
        assert!(d > 8.0 && d < 32.0, "mesh average degree {d}");
    }

    #[test]
    fn edge_counts_are_roughly_on_target() {
        for family in GraphFamily::ALL {
            let g = family_graph(2, family, 8192);
            let m = g.num_edges() as f64;
            assert!(
                m > 0.4 * 8192.0 && m < 2.5 * 8192.0,
                "{:?}: m = {m} too far from target",
                family
            );
        }
    }

    #[test]
    fn corpus_spans_the_requested_range() {
        let corpus = netrep_corpus(3, 1000, 20_000);
        assert!(corpus.len() >= 8, "corpus has {} graphs", corpus.len());
        let families: std::collections::HashSet<_> = corpus.iter().map(|c| c.family).collect();
        assert_eq!(families.len(), 4);
        for c in &corpus {
            assert!(c.graph.validate().is_ok(), "{} invalid", c.name);
        }
    }

    #[test]
    fn sample_has_one_graph_per_family() {
        let sample = netrep_sample(4, 2048);
        assert_eq!(sample.len(), 4);
        let families: std::collections::HashSet<_> = sample.iter().map(|c| c.family).collect();
        assert_eq!(families.len(), 4);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = family_graph(9, GraphFamily::Mesh, 2048);
        let b = family_graph(9, GraphFamily::Mesh, 2048);
        assert_eq!(a.graph.canonical_edges(), b.graph.canonical_edges());
    }
}
