//! The *SynPld* dataset: power-law degree sequences materialised with
//! Havel–Hakimi.

use gesmc_graph::gen::{havel_hakimi, powerlaw_degree_sequence, PowerlawConfig};
use gesmc_graph::EdgeListGraph;
use gesmc_randx::rng_from_seed;

/// One instance of the SynPld sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PldInstance {
    /// Number of nodes.
    pub n: usize,
    /// Degree exponent γ.
    pub gamma: f64,
}

/// Generate one SynPld graph: sample `Pld([1..Δ], γ)` with `Δ = n^{1/(γ−1)}`
/// and realise it with Havel–Hakimi (the paper's construction, Sec. 6).
pub fn syn_pld_graph(seed: u64, n: usize, gamma: f64) -> EdgeListGraph {
    let mut rng = rng_from_seed(seed ^ 0x9d1d);
    let seq = powerlaw_degree_sequence(&mut rng, &PowerlawConfig::paper(n, gamma));
    havel_hakimi(&seq).expect("sampled sequence is graphical by construction")
}

/// The cross product of node counts and degree exponents (Figs. 2 and 8 use
/// `n ∈ {2^7, 2^10, 2^13}` × `γ ∈ {2.01, 2.1, 2.2, 2.5}` and
/// `n ∈ {2^24, …}` × `γ ∈ [2.01, 3.0]` respectively).
pub fn syn_pld_sweep(node_counts: &[usize], gammas: &[f64]) -> Vec<PldInstance> {
    let mut out = Vec::new();
    for &n in node_counts {
        for &gamma in gammas {
            out.push(PldInstance { n, gamma });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_realise_power_law_sequences() {
        for &(n, gamma) in &[(128usize, 2.01f64), (1024, 2.2), (512, 2.9)] {
            let g = syn_pld_graph(3, n, gamma);
            assert!(g.validate().is_ok());
            assert_eq!(g.num_nodes(), n);
            let deg = g.degrees();
            assert!(deg.min_degree() >= 1);
            assert!((deg.max_degree() as usize) < n);
        }
    }

    #[test]
    fn smaller_gamma_gives_larger_hubs() {
        let heavy = syn_pld_graph(5, 4096, 2.01);
        let light = syn_pld_graph(5, 4096, 2.9);
        assert!(heavy.max_degree() > light.max_degree());
    }

    #[test]
    fn sweep_is_the_cross_product() {
        let sweep = syn_pld_sweep(&[128, 1024], &[2.01, 2.5]);
        assert_eq!(sweep.len(), 4);
        assert!(sweep.contains(&PldInstance { n: 1024, gamma: 2.5 }));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = syn_pld_graph(11, 256, 2.3);
        let b = syn_pld_graph(11, 256, 2.3);
        assert_eq!(a.canonical_edges(), b.canonical_edges());
    }
}
