//! Golden-value and property tests for the `G²`/BIC independence decision
//! (`gesmc_analysis::independence`).
//!
//! The golden values are hand-computed from the definition
//! `G² = 2 Σ n_ij ln(n_ij N / (n_i· n_·j))` on small transition tables, so a
//! regression in the statistic (not just in the boolean decision) is caught
//! with full precision.  The property test checks the headline guarantee the
//! study pipeline relies on: a genuinely i.i.d. edge-presence series is
//! classified independent for *every* thinning value.

use gesmc_analysis::{ThinnedAutocorrelation, TransitionCounts};
use gesmc_randx::rng_from_seed;
use proptest::prelude::*;
use rand::Rng as _;

/// Build counts from explicit cell values `(n00, n01, n10, n11)`.
fn counts(n00: u64, n01: u64, n10: u64, n11: u64) -> TransitionCounts {
    let mut c = TransitionCounts::new();
    for (prev, next, n) in
        [(false, false, n00), (false, true, n01), (true, false, n10), (true, true, n11)]
    {
        for _ in 0..n {
            c.record(prev, next);
        }
    }
    c
}

#[test]
fn g2_golden_values() {
    // Hand-computed: rows (60, 40), cols (60, 40), N = 100.
    // G² = 2·(50·ln(50/36) + 10·ln(10/24) + 10·ln(10/24) + 30·ln(30/16)).
    let sticky = counts(50, 10, 10, 30);
    assert!((sticky.g2() - 35.54817676839005).abs() < 1e-9, "got {}", sticky.g2());

    // Almost-uniform table: every expected cell is 25.
    // G² = 2·(2·26·ln(26/25) + 2·24·ln(24/25)).
    let near_uniform = counts(26, 24, 24, 26);
    assert!((near_uniform.g2() - 0.16004269399676296).abs() < 1e-12, "got {}", near_uniform.g2());

    // Counts exactly proportional to the product of the marginals: G² = 0.
    let product = counts(16, 24, 24, 36);
    assert!(product.g2().abs() < 1e-9, "got {}", product.g2());

    // Tiny diagonal table: G² = 2·(ln 2 + ln 2) = 4·ln 2.
    let diagonal = counts(1, 0, 0, 1);
    assert!((diagonal.g2() - 2.772588722239781).abs() < 1e-12, "got {}", diagonal.g2());

    // Large sticky chain: the statistic grows linearly in N.
    let large = counts(9000, 1000, 1000, 9000);
    assert!((large.g2() - 14722.568286739886).abs() < 1e-6, "got {}", large.g2());
}

#[test]
fn bic_decision_golden_values() {
    // ln 100 ≈ 4.6052.
    assert!(!counts(50, 10, 10, 30).is_independent(), "G² ≈ 35.55 > ln 100");
    assert!(counts(26, 24, 24, 26).is_independent(), "G² ≈ 0.16 ≤ ln 100");
    assert!(counts(16, 24, 24, 36).is_independent(), "G² = 0");
    // ln 2 ≈ 0.693 < G² = 4·ln 2 ≈ 2.77: two observations of perfect
    // persistence already look Markovian to the BIC.
    assert!(!counts(1, 0, 0, 1).is_independent());
    assert!(!counts(9000, 1000, 1000, 9000).is_independent(), "G² ≈ 14722 > ln 20000");
    // Degenerate tables are deemed independent by definition.
    assert!(counts(0, 0, 0, 0).is_independent());
    assert!(counts(1, 0, 0, 0).is_independent());
}

#[test]
fn g2_is_invariant_under_state_relabeling() {
    // Swapping the roles of 0 and 1 (transposing both margins) cannot change
    // the log-likelihood ratio.
    let a = counts(50, 10, 10, 30);
    let b = counts(30, 10, 10, 50);
    assert!((a.g2() - b.g2()).abs() < 1e-9);
}

proptest! {
    /// A genuinely i.i.d. series is classified independent for every
    /// thinning value — directly on [`TransitionCounts`].
    #[test]
    fn iid_series_is_independent_for_all_thinnings(seed in 0u64..24) {
        let mut rng = rng_from_seed(0x1D5E_0000 + seed);
        let p = 0.2 + 0.05 * (seed % 8) as f64; // marginals from 0.2 to 0.55
        let series: Vec<bool> = (0..24_000).map(|_| rng.gen_bool(p)).collect();
        for thinning in [1usize, 2, 3, 4, 8, 16] {
            let thinned: Vec<bool> = series.iter().copied().step_by(thinning).collect();
            let mut c = TransitionCounts::new();
            for w in thinned.windows(2) {
                c.record(w[0], w[1]);
            }
            prop_assert!(
                c.is_independent(),
                "seed {} thinning {}: G² = {} exceeds ln N = {}",
                seed,
                thinning,
                c.g2(),
                (c.total() as f64).ln()
            );
        }
    }

    /// The same guarantee through the streaming accumulator the study
    /// pipeline uses: feed i.i.d. presence bits for many edges and require
    /// the non-independent fraction to stay near the BIC false-positive
    /// rate at every thinning value.
    #[test]
    fn iid_edges_have_low_dependent_fraction(seed in 0u64..8) {
        let edges = 64usize;
        let thinnings = [1usize, 2, 4, 8];
        let mut rng = rng_from_seed(0xACC0_0000 + seed);
        let mut acc = ThinnedAutocorrelation::new(edges, &thinnings);
        for _ in 0..4096 {
            let bits: Vec<bool> = (0..edges).map(|_| rng.gen_bool(0.4)).collect();
            acc.observe(&bits);
        }
        for (k, frac) in thinnings.iter().zip(acc.non_independent_fractions()) {
            prop_assert!(
                frac <= 0.1,
                "seed {seed}: {frac} of i.i.d. edges deemed dependent at thinning {k}"
            );
        }
    }
}
