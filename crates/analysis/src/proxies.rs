//! Scalar convergence proxies.
//!
//! Before data-driven stopping criteria, practitioners monitored aggregate
//! graph statistics (triangle count, clustering, assortativity) along the
//! chain and declared convergence once they stabilised.  The paper notes these
//! proxies are *less sensitive* than the autocorrelation analysis; we provide
//! them for the examples and as a sanity check that the chains do change the
//! structure of the graph while preserving degrees.

use gesmc_core::EdgeSwitching;
use gesmc_graph::metrics::{count_triangles, degree_assortativity, global_clustering_coefficient};
use gesmc_graph::EdgeListGraph;

/// A trace of proxy statistics along a chain run.
#[derive(Debug, Clone, Default)]
pub struct ProxyTrace {
    /// Triangle count after each superstep (index 0 = initial graph).
    pub triangles: Vec<u64>,
    /// Global clustering coefficient after each superstep.
    pub clustering: Vec<f64>,
    /// Degree assortativity after each superstep (`None` when undefined).
    pub assortativity: Vec<Option<f64>>,
}

impl ProxyTrace {
    /// Record the proxies of one graph snapshot.
    pub fn record(&mut self, graph: &EdgeListGraph) {
        self.triangles.push(count_triangles(graph));
        self.clustering.push(global_clustering_coefficient(graph));
        self.assortativity.push(degree_assortativity(graph));
    }

    /// Number of snapshots recorded.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// Whether no snapshot has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Relative change of the triangle count between the first and last
    /// snapshot (0 when fewer than two snapshots exist or the initial count is
    /// zero).
    pub fn triangle_drift(&self) -> f64 {
        match (self.triangles.first(), self.triangles.last()) {
            (Some(&first), Some(&last)) if self.triangles.len() > 1 && first > 0 => {
                (last as f64 - first as f64).abs() / first as f64
            }
            _ => 0.0,
        }
    }
}

/// Run `chain` for `supersteps` supersteps recording proxies after each one
/// (plus the initial graph).
pub fn proxy_trace<C: EdgeSwitching>(chain: &mut C, supersteps: usize) -> ProxyTrace {
    let mut trace = ProxyTrace::default();
    trace.record(&chain.graph());
    for _ in 0..supersteps {
        chain.superstep();
        trace.record(&chain.graph());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::{SeqES, SwitchingConfig};
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn trace_has_one_entry_per_superstep_plus_initial() {
        let mut rng = rng_from_seed(1);
        let graph = gnp(&mut rng, 60, 0.15);
        let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(2));
        let trace = proxy_trace(&mut chain, 5);
        assert_eq!(trace.len(), 6);
        assert!(!trace.is_empty());
        assert_eq!(trace.clustering.len(), 6);
        assert_eq!(trace.assortativity.len(), 6);
    }

    #[test]
    fn drift_is_zero_for_empty_or_single_snapshot() {
        let trace = ProxyTrace::default();
        assert_eq!(trace.triangle_drift(), 0.0);
        let mut trace = ProxyTrace::default();
        trace.triangles.push(10);
        assert_eq!(trace.triangle_drift(), 0.0);
    }

    #[test]
    fn randomisation_changes_clustering_of_a_clustered_graph() {
        // A graph of many disjoint triangles has clustering 1; switching
        // destroys most of it while keeping all degrees equal to 2.
        let t = 60u32;
        let edges: Vec<gesmc_graph::Edge> = (0..t)
            .flat_map(|i| {
                let base = 3 * i;
                [
                    gesmc_graph::Edge::new(base, base + 1),
                    gesmc_graph::Edge::new(base + 1, base + 2),
                    gesmc_graph::Edge::new(base, base + 2),
                ]
            })
            .collect();
        let graph = EdgeListGraph::new(3 * t as usize, edges).unwrap();
        let mut chain = SeqES::new(graph, SwitchingConfig::with_seed(3));
        let trace = proxy_trace(&mut chain, 20);
        let initial = trace.clustering.first().copied().unwrap();
        let final_ = trace.clustering.last().copied().unwrap();
        assert!((initial - 1.0).abs() < 1e-12);
        assert!(final_ < 0.5, "clustering should collapse, still {final_}");
        assert!(trace.triangle_drift() > 0.5);
    }
}
