//! On-the-fly autocorrelation analysis over multiple thinning values.
//!
//! Storing the full per-edge time series for a long run is memory-hungry; the
//! paper instead fixes a set of thinning values `T` and aggregates the
//! transition counts of every `k`-thinned series on the fly (Sec. 6.1).  This
//! module implements that accumulator and the end-to-end harness that drives a
//! chain, samples the tracked edges after every superstep and reports the
//! fraction of non-independent edges per thinning value — the quantity plotted
//! in Figs. 2 and 3.

use crate::independence::TransitionCounts;
use gesmc_core::EdgeSwitching;
use gesmc_graph::{EdgeListGraph, PackedEdge};
use std::collections::HashSet;

/// The set of edges whose presence is tracked over time.
///
/// Following the paper, the tracked edges are (by default) the edges of the
/// *initial* graph, which keeps the memory footprint at `Θ(m)` regardless of
/// the number of supersteps.
#[derive(Debug, Clone)]
pub struct EdgeTracker {
    tracked: Vec<PackedEdge>,
}

impl EdgeTracker {
    /// Track the edges of `graph`.
    pub fn initial_edges(graph: &EdgeListGraph) -> Self {
        Self { tracked: graph.packed_edges() }
    }

    /// Track an explicit set of packed edges.
    pub fn new(tracked: Vec<PackedEdge>) -> Self {
        Self { tracked }
    }

    /// Number of tracked edges.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// Presence bit of every tracked edge in `graph`.
    pub fn presence(&self, graph: &EdgeListGraph) -> Vec<bool> {
        let set: HashSet<PackedEdge> = graph.packed_edges().into_iter().collect();
        self.tracked.iter().map(|e| set.contains(e)).collect()
    }
}

/// Per-edge, per-thinning accumulator of transition counts.
#[derive(Debug, Clone)]
pub struct ThinnedAutocorrelation {
    thinnings: Vec<usize>,
    /// `state[t][e]` = (previous bit at the last multiple of thinnings[t], counts).
    state: Vec<Vec<(Option<bool>, TransitionCounts)>>,
    observations: usize,
}

impl ThinnedAutocorrelation {
    /// Create an accumulator for `num_edges` tracked edges and the given
    /// thinning values (deduplicated, sorted).
    pub fn new(num_edges: usize, thinnings: &[usize]) -> Self {
        let mut ks: Vec<usize> = thinnings.iter().copied().filter(|&k| k > 0).collect();
        ks.sort_unstable();
        ks.dedup();
        Self {
            state: vec![vec![(None, TransitionCounts::new()); num_edges]; ks.len()],
            thinnings: ks,
            observations: 0,
        }
    }

    /// The thinning values in use.
    pub fn thinnings(&self) -> &[usize] {
        &self.thinnings
    }

    /// Feed the presence bits observed after one superstep.
    ///
    /// # Panics
    /// Panics if `bits.len()` differs from the tracked edge count.
    pub fn observe(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.state.first().map_or(bits.len(), |s| s.len()));
        self.observations += 1;
        for (t, &k) in self.thinnings.iter().enumerate() {
            if self.observations % k != 0 {
                continue;
            }
            for (slot, &bit) in self.state[t].iter_mut().zip(bits) {
                if let Some(prev) = slot.0 {
                    slot.1.record(prev, bit);
                }
                slot.0 = Some(bit);
            }
        }
    }

    /// Fraction of tracked edges whose `k`-thinned series is *not* deemed
    /// independent, for every thinning value (in the order of
    /// [`Self::thinnings`]).
    pub fn non_independent_fractions(&self) -> Vec<f64> {
        self.state
            .iter()
            .map(|edges| {
                if edges.is_empty() {
                    return 0.0;
                }
                let dependent = edges.iter().filter(|(_, counts)| !counts.is_independent()).count();
                dependent as f64 / edges.len() as f64
            })
            .collect()
    }
}

/// Result of a mixing-profile run: one (thinning value, fraction of
/// non-independent edges) pair per thinning value.
#[derive(Debug, Clone)]
pub struct MixingProfile {
    /// Name of the chain that produced the profile.
    pub chain: String,
    /// (thinning value, fraction of non-independent edges).
    pub points: Vec<(usize, f64)>,
}

impl MixingProfile {
    /// The first thinning value whose non-independence fraction drops below
    /// `threshold` (the y-axis of Fig. 3), if any.
    pub fn first_thinning_below(&self, threshold: f64) -> Option<usize> {
        self.points.iter().find(|&&(_, frac)| frac < threshold).map(|&(k, _)| k)
    }
}

/// Drive `chain` for `supersteps` supersteps, tracking the edges of
/// `initial_graph`, and return the non-independence profile over `thinnings`.
///
/// The chain is expected to start at `initial_graph`; the caller constructs it
/// so that the same harness serves ES-MC, G-ES-MC and the baselines.  `C` may
/// be unsized (`dyn EdgeSwitching`), so registry-built boxed chains fit.
pub fn mixing_profile<C: EdgeSwitching + ?Sized>(
    chain: &mut C,
    initial_graph: &EdgeListGraph,
    supersteps: usize,
    thinnings: &[usize],
) -> MixingProfile {
    let tracker = EdgeTracker::initial_edges(initial_graph);
    let mut acc = ThinnedAutocorrelation::new(tracker.len(), thinnings);
    for _ in 0..supersteps {
        chain.superstep();
        let bits = tracker.presence(&chain.graph());
        acc.observe(&bits);
    }
    MixingProfile {
        chain: chain.name().to_string(),
        points: acc.thinnings().iter().copied().zip(acc.non_independent_fractions()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_core::{SeqGlobalES, SwitchingConfig};
    use gesmc_graph::gen::gnp;
    use gesmc_randx::rng_from_seed;

    #[test]
    fn tracker_reports_presence() {
        let mut rng = rng_from_seed(1);
        let graph = gnp(&mut rng, 50, 0.1);
        let tracker = EdgeTracker::initial_edges(&graph);
        let bits = tracker.presence(&graph);
        assert_eq!(bits.len(), graph.num_edges());
        assert!(bits.iter().all(|&b| b), "all initial edges present initially");
    }

    #[test]
    fn accumulator_thinning_schedule() {
        // Two edges, thinnings 1 and 2, six observations.
        let mut acc = ThinnedAutocorrelation::new(2, &[1, 2, 2, 0]);
        assert_eq!(acc.thinnings(), &[1, 2]);
        for step in 0..6 {
            let bit = step % 2 == 0;
            acc.observe(&[bit, true]);
        }
        // Thinning 1 sees 5 transitions per edge, thinning 2 sees 2.
        assert_eq!(acc.state[0][0].1.total(), 5);
        assert_eq!(acc.state[1][0].1.total(), 2);
        // The alternating edge is perfectly anti-correlated at thinning 1 and
        // constant at thinning 2.
        assert_eq!(acc.state[1][0].1.count(false, false), 2);
    }

    #[test]
    fn fractions_lie_in_unit_interval_and_decrease_with_thinning() {
        let mut rng = rng_from_seed(3);
        let graph = gnp(&mut rng, 80, 0.08);
        let mut chain = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(4));
        let profile = mixing_profile(&mut chain, &graph, 40, &[1, 2, 4, 8]);
        assert_eq!(profile.points.len(), 4);
        for &(_, frac) in &profile.points {
            assert!((0.0..=1.0).contains(&frac), "fraction {frac} out of range");
        }
        // Heavier thinning cannot make edges look *less* independent in a
        // well-mixing chain; allow small statistical slack.
        let first = profile.points.first().unwrap().1;
        let last = profile.points.last().unwrap().1;
        assert!(last <= first + 0.15, "thinning should reduce dependence: {first} -> {last}");
    }

    #[test]
    fn first_thinning_below_threshold() {
        let profile = MixingProfile {
            chain: "test".into(),
            points: vec![(1, 0.9), (2, 0.5), (4, 0.009), (8, 0.001)],
        };
        assert_eq!(profile.first_thinning_below(0.01), Some(4));
        assert_eq!(profile.first_thinning_below(0.6), Some(2));
        assert_eq!(profile.first_thinning_below(0.0001), None);
    }

    #[test]
    fn empty_tracker_is_handled() {
        let graph = EdgeListGraph::new(3, vec![]).unwrap();
        let tracker = EdgeTracker::initial_edges(&graph);
        assert!(tracker.is_empty());
        let mut acc = ThinnedAutocorrelation::new(0, &[1, 2]);
        acc.observe(&[]);
        assert_eq!(acc.non_independent_fractions(), vec![0.0, 0.0]);
    }
}
