//! The `G²` statistic and BIC-based independence test for binary time series.
//!
//! Following Ray, Pinar and Seshadhri (the paper's reference \[64\]), a binary
//! time series `{Z_t}` is summarised by its four transition counts
//! `n_{ij} = #{t : Z_t = i, Z_{t+1} = j}`.  Two models are compared:
//!
//! * **independent draws** — one free parameter (the marginal probability);
//! * **first-order Markov chain** — two free parameters (`p_{0→1}`, `p_{1→1}`).
//!
//! Twice the log-likelihood difference between the models is the
//! `G²`-statistic of the 2×2 transition table.  The Bayesian Information
//! Criterion adds a `ln N` penalty per extra parameter, so the chain is deemed
//! *independent* iff `G² ≤ ln N` — i.e. the extra Markov parameter does not
//! pay for itself.

/// Transition counts of a binary time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    counts: [u64; 4],
}

impl TransitionCounts {
    /// Create empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transition from `prev` to `next`.
    #[inline]
    pub fn record(&mut self, prev: bool, next: bool) {
        self.counts[(prev as usize) * 2 + next as usize] += 1;
    }

    /// Total number of recorded transitions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count of transitions `i → j`.
    pub fn count(&self, prev: bool, next: bool) -> u64 {
        self.counts[(prev as usize) * 2 + next as usize]
    }

    /// The `G²` log-likelihood-ratio statistic of the 2×2 transition table.
    ///
    /// `G² = 2 Σ_{ij} n_{ij} ln(n_{ij} N / (n_{i·} n_{·j}))`, with empty cells
    /// contributing zero.  Always non-negative (up to floating-point noise).
    pub fn g2(&self) -> f64 {
        let n = self.total() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let row = [self.counts[0] + self.counts[1], self.counts[2] + self.counts[3]];
        let col = [self.counts[0] + self.counts[2], self.counts[1] + self.counts[3]];
        let mut g2 = 0.0;
        for (i, &row_total) in row.iter().enumerate() {
            for (j, &col_total) in col.iter().enumerate() {
                let observed = self.counts[i * 2 + j] as f64;
                if observed == 0.0 {
                    continue;
                }
                let expected = row_total as f64 * col_total as f64 / n;
                g2 += 2.0 * observed * (observed / expected).ln();
            }
        }
        g2.max(0.0)
    }

    /// BIC decision: does the independent model describe the series at least
    /// as well as the first-order Markov model?
    ///
    /// The Markov model has one extra parameter, penalised by `ln N`, so the
    /// series is deemed independent iff `G² ≤ ln N`.  Degenerate series (no
    /// transitions, or a constant series) are deemed independent.
    pub fn is_independent(&self) -> bool {
        let n = self.total();
        if n < 2 {
            return true;
        }
        self.g2() <= (n as f64).ln()
    }

    /// Merge another set of counts into this one.
    pub fn merge(&mut self, other: &TransitionCounts) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesmc_randx::rng_from_seed;
    use rand::Rng as _;

    fn counts_from_series(series: &[bool]) -> TransitionCounts {
        let mut c = TransitionCounts::new();
        for w in series.windows(2) {
            c.record(w[0], w[1]);
        }
        c
    }

    #[test]
    fn empty_and_constant_series_are_independent() {
        assert!(TransitionCounts::new().is_independent());
        let constant = vec![true; 100];
        assert!(counts_from_series(&constant).is_independent());
        assert_eq!(counts_from_series(&constant).g2(), 0.0);
    }

    #[test]
    fn iid_series_is_deemed_independent() {
        let mut rng = rng_from_seed(1);
        let series: Vec<bool> = (0..20_000).map(|_| rng.gen_bool(0.3)).collect();
        let counts = counts_from_series(&series);
        assert!(counts.is_independent(), "G² = {}", counts.g2());
    }

    #[test]
    fn sticky_markov_series_is_deemed_dependent() {
        // A strongly autocorrelated chain: stay in the same state with
        // probability 0.95.
        let mut rng = rng_from_seed(2);
        let mut state = false;
        let series: Vec<bool> = (0..20_000)
            .map(|_| {
                if rng.gen_bool(0.05) {
                    state = !state;
                }
                state
            })
            .collect();
        let counts = counts_from_series(&series);
        assert!(!counts.is_independent(), "G² = {} too small", counts.g2());
        assert!(counts.g2() > 1000.0);
    }

    #[test]
    fn g2_is_zero_for_perfectly_independent_table() {
        // Counts proportional to the product of the marginals.
        let mut c = TransitionCounts::new();
        // rows: 40/60, cols: 40/60 -> n00=16, n01=24, n10=24, n11=36
        for _ in 0..16 {
            c.record(false, false);
        }
        for _ in 0..24 {
            c.record(false, true);
        }
        for _ in 0..24 {
            c.record(true, false);
        }
        for _ in 0..36 {
            c.record(true, true);
        }
        assert!(c.g2().abs() < 1e-9);
        assert!(c.is_independent());
    }

    #[test]
    fn counting_and_merge() {
        let mut a = counts_from_series(&[true, false, true, true]);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(true, false), 1);
        assert_eq!(a.count(false, true), 1);
        assert_eq!(a.count(true, true), 1);
        let b = counts_from_series(&[false, false]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(false, false), 1);
    }
}
