//! Mixing-time analysis for switching Markov chains (Sec. 6.1 of the paper).
//!
//! The paper estimates how many supersteps a chain needs to "forget" its
//! initial graph with an **autocorrelation analysis**: for every edge of the
//! initial graph a binary time series records whether the edge exists after
//! each superstep.  For a *thinning value* `k` the series is sub-sampled to
//! every `k`-th observation, and a model-selection criterion (the Bayesian
//! Information Criterion computed from the `G²` statistic) decides whether the
//! thinned series looks more like independent draws than like a first-order
//! Markov chain.  The headline quantity — plotted in Figs. 2 and 3 — is the
//! *fraction of non-independent edges* as a function of `k`.
//!
//! Modules:
//! * [`independence`] — transition counts, `G²`, and the BIC decision rule;
//! * [`autocorrelation`] — the on-the-fly multi-thinning accumulator and the
//!   end-to-end [`autocorrelation::mixing_profile`] harness;
//! * [`proxies`] — classic scalar convergence proxies (triangles, clustering,
//!   assortativity) used by the examples for illustration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autocorrelation;
pub mod independence;
pub mod proxies;

pub use autocorrelation::{mixing_profile, EdgeTracker, MixingProfile, ThinnedAutocorrelation};
pub use independence::TransitionCounts;
pub use proxies::ProxyTrace;
