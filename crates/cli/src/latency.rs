//! Fixed-bucket latency accounting for `gesmc loadgen`.
//!
//! Workers record each request latency into quarter-log2 microsecond
//! buckets (`bound(i) = 2^(i/4) µs`), so a tally is a few hundred bytes
//! regardless of run length, merging per-thread tallies is an array add,
//! and percentiles are derived from the cumulative bucket counts.  The
//! quarter-log2 spacing bounds the estimation error of any percentile at
//! one bucket ratio (`2^(1/4) ≈ 1.19`); estimates are additionally clamped
//! to the observed min/max, so constant workloads report exact values.

/// Number of finite buckets; bucket `i` covers `(2^((i-1)/4), 2^(i/4)]` µs,
/// the last bucket (~17.9 minutes) absorbs everything longer.
pub const BUCKETS: usize = 121;

/// The inclusive upper bound of bucket `i`, in microseconds.
pub fn bucket_bound_us(i: usize) -> u64 {
    2f64.powf(i as f64 / 4.0).round() as u64
}

fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let i = (4.0 * (us as f64).log2()).ceil() as usize;
    i.min(BUCKETS - 1)
}

/// A mergeable bucketed latency tally.
#[derive(Debug, Clone)]
pub struct LatencyBuckets {
    counts: [u64; BUCKETS],
    count: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyBuckets {
    fn default() -> Self {
        Self { counts: [0; BUCKETS], count: 0, min_us: u64::MAX, max_us: 0 }
    }
}

impl LatencyBuckets {
    /// Record one latency observation.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &LatencyBuckets) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `p`-th percentile (0..=1), derived from the bucket counts: the
    /// upper bound of the bucket holding the rank, clamped to the observed
    /// min/max.  Returns 0 for an empty tally.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                if i == BUCKETS - 1 {
                    // Overflow bucket: its bound says nothing, the observed
                    // max is the only honest estimate.
                    return self.max_us;
                }
                return bucket_bound_us(i).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_grow_by_a_quarter_log2() {
        assert_eq!(bucket_bound_us(0), 1);
        assert_eq!(bucket_bound_us(4), 2);
        assert_eq!(bucket_bound_us(40), 1024);
        for i in 1..BUCKETS {
            assert!(bucket_bound_us(i) >= bucket_bound_us(i - 1), "bucket {i} not monotone");
        }
    }

    #[test]
    fn empty_tally_reports_zero() {
        let tally = LatencyBuckets::default();
        assert_eq!(tally.count(), 0);
        assert_eq!(tally.percentile_us(0.50), 0);
    }

    #[test]
    fn constant_workload_is_exact_and_skew_is_bounded() {
        let mut tally = LatencyBuckets::default();
        for _ in 0..100 {
            tally.record_us(1_000);
        }
        // The clamp to the observed max makes a constant workload exact.
        assert_eq!(tally.percentile_us(0.50), 1_000);
        assert_eq!(tally.percentile_us(0.99), 1_000);

        // A known mixture: 90 fast, 10 slow.  p50 lands in the fast bucket,
        // p99 in the slow one, each within one bucket ratio (2^(1/4)).
        let mut tally = LatencyBuckets::default();
        for _ in 0..90 {
            tally.record_us(500);
        }
        for _ in 0..10 {
            tally.record_us(20_000);
        }
        let p50 = tally.percentile_us(0.50);
        assert!((500..=595).contains(&p50), "p50 {p50}");
        let p99 = tally.percentile_us(0.99);
        assert!((20_000..=23_784).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn merge_matches_a_single_combined_tally() {
        let mut a = LatencyBuckets::default();
        let mut b = LatencyBuckets::default();
        let mut combined = LatencyBuckets::default();
        for us in [120, 4_500, 90, 300_000, 77] {
            a.record_us(us);
            combined.record_us(us);
        }
        for us in [2, 800, 15_000] {
            b.record_us(us);
            combined.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        for p in [0.5, 0.9, 0.99] {
            assert_eq!(a.percentile_us(p), combined.percentile_us(p), "p{p}");
        }
    }

    #[test]
    fn outliers_land_in_the_overflow_bucket() {
        let mut tally = LatencyBuckets::default();
        tally.record_us(u64::MAX);
        tally.record_us(3);
        assert_eq!(tally.percentile_us(1.0), u64::MAX);
        assert_eq!(tally.percentile_us(0.25), 3);
    }
}
