//! `gesmc` — randomise an edge list with an edge switching Markov chain.
//!
//! ```text
//! USAGE:
//!   gesmc randomize --input graph.txt --output out.txt [--algo par-global-es]
//!                   [--supersteps 20] [--seed 1] [--threads N]
//!   gesmc generate  --family {gnp,pld,road,mesh,dense} --edges M [--nodes N]
//!                   [--gamma 2.5] --output graph.txt [--seed 1]
//!   gesmc analyze   --input graph.txt [--algo seq-global-es] [--supersteps 30]
//!                   [--seed 1]
//! ```
//!
//! The CLI exercises the same public API as the examples and benchmarks: it
//! reads/writes plain-text edge lists, randomises with any of the implemented
//! chains and can run the autocorrelation analysis on small graphs.

use gesmc_analysis::mixing_profile;
use gesmc_baselines::{AdjacencyListES, GlobalCurveball, SortedAdjacencyES};
use gesmc_core::{
    EdgeSwitching, NaiveParES, ParES, ParGlobalES, SeqES, SeqGlobalES, SwitchingConfig,
};
use gesmc_datasets::{netrep_like::family_graph, syn_gnp_graph, syn_pld_graph, GraphFamily};
use gesmc_graph::io::{read_edge_list_file, write_edge_list_file};
use gesmc_graph::EdgeListGraph;
use std::collections::HashMap;
use std::process::ExitCode;

fn print_usage() {
    eprintln!(
        "gesmc — uniform sampling of simple graphs with prescribed degrees\n\
         \n\
         Subcommands:\n\
           randomize --input FILE --output FILE [--algo NAME] [--supersteps K] [--seed S] [--threads P]\n\
           generate  --family {{gnp,pld,road,mesh,dense}} --edges M [--nodes N] [--gamma G] --output FILE [--seed S]\n\
           analyze   --input FILE [--algo NAME] [--supersteps K] [--seed S]\n\
         \n\
         Algorithms: seq-es, seq-global-es, par-es, par-global-es, naive-par-es,\n\
                     adjacency-es, sorted-adjacency-es, curveball"
    );
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument {flag:?}"));
        };
        let value = iter.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn build_chain(
    name: &str,
    graph: EdgeListGraph,
    config: SwitchingConfig,
) -> Result<Box<dyn EdgeSwitching>, String> {
    Ok(match name {
        "seq-es" => Box::new(SeqES::new(graph, config)),
        "seq-global-es" => Box::new(SeqGlobalES::new(graph, config)),
        "par-es" => Box::new(ParES::new(graph, config)),
        "par-global-es" => Box::new(ParGlobalES::new(graph, config)),
        "naive-par-es" => Box::new(NaiveParES::new(graph, config)),
        "adjacency-es" => Box::new(AdjacencyListES::new(graph, config)),
        "sorted-adjacency-es" => Box::new(SortedAdjacencyES::new(graph, config)),
        "curveball" => Box::new(GlobalCurveball::new(graph, config)),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn cmd_randomize(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("missing --input")?;
    let output = flags.get("output").ok_or("missing --output")?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("par-global-es");
    let supersteps: usize = flags
        .get("supersteps")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("{e}"))?
        .unwrap_or(20);
    let seed: u64 =
        flags.get("seed").map(|s| s.parse()).transpose().map_err(|e| format!("{e}"))?.unwrap_or(1);
    if let Some(threads) = flags.get("threads") {
        let threads: usize = threads.parse().map_err(|e| format!("{e}"))?;
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .map_err(|e| format!("{e}"))?;
    }

    let graph = read_edge_list_file(input).map_err(|e| format!("{e}"))?;
    let degrees = graph.degrees();
    eprintln!(
        "loaded {}: n = {}, m = {}, max degree = {}",
        input,
        graph.num_nodes(),
        graph.num_edges(),
        degrees.max_degree()
    );

    let mut chain = build_chain(algo, graph, SwitchingConfig::with_seed(seed))?;
    let stats = chain.run_supersteps(supersteps);
    let result = chain.graph();
    assert_eq!(result.degrees(), degrees, "degree sequence must be preserved");

    write_edge_list_file(output, &result).map_err(|e| format!("{e}"))?;
    eprintln!(
        "{}: {} supersteps, {:.1}% of {} switches legal, {:.3} s total",
        chain.name(),
        stats.num_supersteps(),
        100.0 * stats.acceptance_rate(),
        stats.total_requested(),
        stats.total_duration().as_secs_f64()
    );
    eprintln!("wrote {output}");
    Ok(())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let family = flags.get("family").ok_or("missing --family")?;
    let output = flags.get("output").ok_or("missing --output")?;
    let edges: usize =
        flags.get("edges").ok_or("missing --edges")?.parse().map_err(|e| format!("{e}"))?;
    let seed: u64 =
        flags.get("seed").map(|s| s.parse()).transpose().map_err(|e| format!("{e}"))?.unwrap_or(1);
    let gamma: f64 = flags
        .get("gamma")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("{e}"))?
        .unwrap_or(2.5);
    let nodes: Option<usize> =
        flags.get("nodes").map(|s| s.parse()).transpose().map_err(|e| format!("{e}"))?;

    let graph = match family.as_str() {
        "gnp" => syn_gnp_graph(seed, nodes.unwrap_or(edges / 8), edges),
        "pld" => syn_pld_graph(seed, nodes.unwrap_or(edges / 3), gamma),
        "road" => family_graph(seed, GraphFamily::RoadLike, edges).graph,
        "mesh" => family_graph(seed, GraphFamily::Mesh, edges).graph,
        "dense" => family_graph(seed, GraphFamily::Dense, edges).graph,
        other => return Err(format!("unknown family {other:?}")),
    };
    write_edge_list_file(output, &graph).map_err(|e| format!("{e}"))?;
    eprintln!(
        "generated {family}: n = {}, m = {}, avg degree = {:.2} -> {output}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("missing --input")?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("seq-global-es");
    let supersteps: usize = flags
        .get("supersteps")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("{e}"))?
        .unwrap_or(30);
    let seed: u64 =
        flags.get("seed").map(|s| s.parse()).transpose().map_err(|e| format!("{e}"))?.unwrap_or(1);

    let graph = read_edge_list_file(input).map_err(|e| format!("{e}"))?;
    let thinnings: Vec<usize> =
        (0..).map(|i| 1usize << i).take_while(|&k| k <= supersteps.max(1)).collect();

    // The generic harness needs a concrete type, so dispatch manually.
    let profile = match algo {
        "seq-es" => {
            let mut c = SeqES::new(graph.clone(), SwitchingConfig::with_seed(seed));
            mixing_profile(&mut c, &graph, supersteps, &thinnings)
        }
        "seq-global-es" => {
            let mut c = SeqGlobalES::new(graph.clone(), SwitchingConfig::with_seed(seed));
            mixing_profile(&mut c, &graph, supersteps, &thinnings)
        }
        "par-global-es" => {
            let mut c = ParGlobalES::new(graph.clone(), SwitchingConfig::with_seed(seed));
            mixing_profile(&mut c, &graph, supersteps, &thinnings)
        }
        other => {
            return Err(format!(
                "analyze supports seq-es, seq-global-es, par-global-es; got {other:?}"
            ))
        }
    };

    println!("algorithm,thinning,non_independent_fraction");
    for (k, frac) in &profile.points {
        println!("{},{k},{frac:.6}", profile.chain);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "randomize" => cmd_randomize(&flags),
        "generate" => cmd_generate(&flags),
        "analyze" => cmd_analyze(&flags),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
