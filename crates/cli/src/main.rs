//! `gesmc` — randomise an edge list with an edge switching Markov chain.
//!
//! ```text
//! USAGE:
//!   gesmc randomize  --input graph.txt --output out.txt [--algo par-global-es?pl=0.001]
//!                    [--supersteps 20] [--seed 1] [--threads N]
//!                    [--mmap [--memory-budget BYTES]]
//!   gesmc generate   --family {gnp,pld,road,mesh,dense} --edges M [--nodes N]
//!                    [--gamma 2.5] --output graph.txt [--seed 1]
//!   gesmc analyze    --input graph.txt [--algo seq-global-es] [--supersteps 30]
//!                    [--seed 1]
//!   gesmc algorithms [--names]
//!   gesmc batch      manifest.json [--workers N] [--mmap [--memory-budget BYTES]]
//!   gesmc resume     job.ckpt [--samples-dir DIR] [--supersteps T] [--threads N]
//!                    [--checkpoint-every K [--checkpoint-dir DIR]]
//!                    [--mmap [--memory-budget BYTES]]
//!   gesmc study      study.json [--scale smoke|paper|xl] [--workers N]
//!                    [--threads-per-job N] [--output-dir DIR] [--resume]
//!   gesmc serve      [--addr HOST:PORT] [--workers N] [--http-workers N]
//!                    [--cache-entries N] [--max-pending N] [--allow-shutdown]
//!                    [--data-dir DIR [--checkpoint-every K]]
//!                    [--peers A,B,C [--advertise ADDR]]
//!                    [--log-format {text,json}] [--log-level L]
//!   gesmc loadgen    --endpoints A[,B,...] [--clients M] [--duration-secs S]
//!                    [--keys K] [--edges M] [--algo SPEC] [--supersteps K] [--json]
//!   gesmc trace      TRACE_ID --endpoints A[,B,...] [--width N] [--json]
//!   gesmc --version | gesmc <subcommand> --help
//! ```
//!
//! The CLI exercises the same public API as the examples and benchmarks: it
//! reads/writes plain-text edge lists, randomises with any registered chain,
//! runs the autocorrelation analysis on small graphs, drives the batched job
//! engine (`gesmc-engine`) for multi-job manifests with checkpoint/resume,
//! and runs end-to-end mixing-time studies (`gesmc-study`, the data behind
//! the paper's Figs. 2-3).
//!
//! Everywhere a chain is named, the spelling is a
//! [`ChainSpec`] resolved against the engine's
//! [`default_registry`] — core chains and baselines alike, with optional
//! parameters (`par-global-es?pl=0.001&prefetch=off`).  `gesmc algorithms`
//! lists the registry, so the CLI's algorithm set can never drift from the
//! engine's.
//!
//! All failures are reported on stderr with a nonzero exit code; the CLI
//! never panics on bad input.

use gesmc_analysis::mixing_profile;
use gesmc_core::{ChainSpec, EdgeSwitching};
use gesmc_datasets::{
    netrep_like::family_graph, syn_gnp_graph, syn_pld_graph, write_syn_gnp_binary, GraphFamily,
};
use gesmc_engine::{
    default_registry, resume_external_job, run_batch, run_external_job, Checkpoint,
    CheckpointReader, EdgeListFileSink, ExternalJob, ExternalOutput, GraphSource, JobSpec,
    Manifest,
};
use gesmc_graph::io::{
    is_binary_edge_list_file, read_edge_list_binary_file, read_edge_list_file,
    write_edge_list_binary_file, write_edge_list_file,
};
use gesmc_graph::EdgeListGraph;
use gesmc_serve::{ServeConfig, Server};
use gesmc_study::{run_study, StudyOptions, StudyScale, StudySpec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;

mod latency;
mod waterfall;

fn print_usage() {
    println!(
        "gesmc — uniform sampling of simple graphs with prescribed degrees\n\
         \n\
         Subcommands:\n\
           randomize  --input FILE --output FILE [--algo SPEC] [--supersteps K] [--seed S] [--threads P]\n\
                      [--mmap [--memory-budget BYTES]]\n\
           generate   --family {{gnp,pld,road,mesh,dense}} --edges M [--nodes N] [--gamma G] --output FILE [--seed S]\n\
           analyze    --input FILE [--algo SPEC] [--supersteps K] [--seed S]\n\
           algorithms [--names]\n\
           batch      MANIFEST.json [--workers N] [--mmap [--memory-budget BYTES]]\n\
           resume     JOB.ckpt [--samples-dir DIR] [--supersteps T] [--threads P]\n\
                      [--checkpoint-every K [--checkpoint-dir DIR]]\n\
                      [--mmap [--memory-budget BYTES]]\n\
           study      STUDY.json [--scale {{smoke,paper,xl}}] [--workers N]\n\
                      [--threads-per-job P] [--output-dir DIR] [--resume]\n\
           serve      [--addr HOST:PORT] [--workers N] [--http-workers N]\n\
                      [--cache-entries N] [--max-pending N] [--allow-shutdown]\n\
                      [--data-dir DIR [--checkpoint-every K]]\n\
                      [--peers A,B,C [--advertise ADDR]]\n\
                      [--log-format {{text,json}}] [--log-level L]\n\
           loadgen    --endpoints A[,B,...] [--clients M] [--duration-secs S]\n\
                      [--keys K] [--edges M] [--algo SPEC] [--supersteps K] [--json]\n\
           trace      TRACE_ID --endpoints A[,B,...] [--width N] [--json]\n\
         \n\
         Run `gesmc <subcommand> --help` for per-subcommand details and\n\
         `gesmc --version` for the version.\n\
         \n\
         An algorithm SPEC is a registered chain name with optional parameters,\n\
         e.g. par-global-es, global-curveball, or par-global-es?pl=0.001&prefetch=off.\n\
         Run `gesmc algorithms` for the full registry ({} chains), parameters and\n\
         capabilities; every listed chain works in randomize/analyze/batch/study\n\
         and checkpoints/resumes.",
        default_registry().len()
    );
}

/// The known subcommands, for dispatch and nearest-match suggestions.
const SUBCOMMANDS: &[&str] = &[
    "randomize",
    "generate",
    "analyze",
    "algorithms",
    "batch",
    "resume",
    "study",
    "serve",
    "loadgen",
    "trace",
    "help",
    "version",
];

/// Per-subcommand usage text (`gesmc <subcommand> --help`).
fn command_help(command: &str) -> Option<&'static str> {
    Some(match command {
        "randomize" => {
            "gesmc randomize --input FILE --output FILE [options]\n\
             Randomize an edge-list file with a switching chain and write the result.\n\
             Inputs may be plain text or binary GESMCEL1; the output matches the\n\
             input's format.\n\
             \n\
             Required:\n\
               --input FILE       edge list to randomize (text or binary GESMCEL1)\n\
               --output FILE      where the randomized edge list goes\n\
             Options:\n\
               --algo SPEC        chain spec (default par-global-es); see `gesmc algorithms`\n\
               --supersteps K     superstep count (default 20)\n\
               --seed S           PRNG seed (default 1)\n\
               --threads P        rayon thread budget (default: all cores)\n\
               --mmap             run out-of-core: the graph lives in a disk-backed\n\
                                  store, never on the heap (needs a binary input and a\n\
                                  store-capable chain such as seq-es-ext); output bytes\n\
                                  are identical to an in-memory run at the same seed\n\
               --memory-budget B  chunk-cache budget in bytes for --mmap (default 64 MiB)"
        }
        "generate" => {
            "gesmc generate --family {gnp,pld,road,mesh,dense} --edges M --output FILE [options]\n\
             Generate a synthetic graph from the dataset families.\n\
             A FILE ending in .el is written as binary GESMCEL1; for gnp the edges\n\
             stream straight to disk in bounded chunks, so --edges may exceed RAM.\n\
             \n\
             Required:\n\
               --family NAME      gnp, pld, road, mesh, or dense\n\
               --edges M          target edge count\n\
               --output FILE      where the edge list goes (.el selects binary GESMCEL1)\n\
             Options:\n\
               --nodes N          node count (default: family-specific from M)\n\
               --gamma G          power-law exponent, pld only (default 2.5)\n\
               --seed S           generator seed (default 1)"
        }
        "analyze" => {
            "gesmc analyze --input FILE [options]\n\
             Estimate the mixing profile of a chain on a small graph (CSV on stdout).\n\
             \n\
             Required:\n\
               --input FILE       plain-text edge list to analyse\n\
             Options:\n\
               --algo SPEC        chain spec (default seq-global-es)\n\
               --supersteps K     supersteps per thinning (default 30)\n\
               --seed S           PRNG seed (default 1)"
        }
        "algorithms" => {
            "gesmc algorithms [--names]\n\
             List every registered chain with parameters, defaults, and capabilities.\n\
             \n\
             Options:\n\
               --names            print only the chain names, one per line"
        }
        "batch" => {
            "gesmc batch MANIFEST.json [--workers N]\n\
             Run every job of a JSON manifest over the engine worker pool,\n\
             streaming thinned samples to per-job files.\n\
             \n\
             Options:\n\
               --workers N        worker threads (default: manifest value, 0 = all cores)\n\
               --mmap             run the jobs out-of-core, one at a time; each job\n\
                                  needs a binary GESMCEL1 file source and a\n\
                                  store-capable chain; samples are written as binary\n\
                                  {job}-s{superstep}.el files\n\
               --memory-budget B  chunk-cache budget in bytes for --mmap (default 64 MiB)"
        }
        "resume" => {
            "gesmc resume JOB.ckpt [options]\n\
             Continue an interrupted job from its checkpoint, bit-identically.\n\
             \n\
             Options:\n\
               --samples-dir DIR      where resumed samples go (default samples)\n\
               --supersteps T         extend the superstep target\n\
               --threads P            rayon thread budget\n\
               --checkpoint-every K   keep checkpointing every K supersteps\n\
               --checkpoint-dir DIR   checkpoint directory (default: alongside JOB.ckpt)\n\
               --mmap                 resume out-of-core: the checkpointed edges stream\n\
                                      into a disk-backed store without ever loading the\n\
                                      graph; samples are written as binary .el files\n\
               --memory-budget B      chunk-cache budget in bytes for --mmap (default 64 MiB)"
        }
        "study" => {
            "gesmc study STUDY.json [options]\n\
             Run an end-to-end mixing-time study (the data behind Figs. 2-3).\n\
             \n\
             Options:\n\
               --scale {smoke,paper,xl}  workload scale (default smoke; xl sizes the\n\
                                      graphs for the out-of-core seq-es-ext chain)\n\
               --workers N            cell-level worker threads\n\
               --threads-per-job P    rayon threads per cell\n\
               --output-dir DIR       report directory (default results)\n\
               --resume               reuse completed cells from an earlier run"
        }
        "serve" => {
            "gesmc serve [options]\n\
             Serve null-model samples over HTTP with a warm sample cache\n\
             (endpoints: /v1/sample, /v1/jobs, /v1/algorithms, /healthz, /metrics).\n\
             \n\
             Options:\n\
               --addr HOST:PORT     bind address (default 127.0.0.1:8080; port 0 = ephemeral)\n\
               --workers N          engine worker threads (default: all cores)\n\
               --http-workers N     HTTP worker threads (default 4)\n\
               --cache-entries N    warm-cache capacity (default 256; 0 disables)\n\
               --max-pending N      admission queue bound before 429s (default 64; 0 = unbounded)\n\
               --allow-shutdown     honour POST /v1/shutdown (graceful stop over HTTP)\n\
               --data-dir DIR       durability root: journal job submissions, checkpoint\n\
                                    running jobs, spill finished samples; on boot the dir is\n\
                                    replayed, resuming interrupted jobs bit-identically\n\
               --checkpoint-every K checkpoint cadence in supersteps (default 25; 0 = only\n\
                                    from-scratch recovery; needs --data-dir)\n\
               --peers A,B,C        static cluster membership: every node's address,\n\
                                    comma-separated and identical on every node; sample\n\
                                    keys are sharded over a consistent-hash ring and\n\
                                    misrouted requests are forwarded to their owner\n\
               --advertise ADDR     this node's own entry in --peers (default: --addr)\n\
               --log-format FMT     log line shape: text (default) or json\n\
               --log-level L        default log level: trace, debug, info (default),\n\
                                    warn, or error; a non-empty GESMC_LOG env var\n\
                                    (e.g. GESMC_LOG=gesmc_serve::http=debug) overrides"
        }
        "loadgen" => {
            "gesmc loadgen --endpoints A[,B,...] [options]\n\
             Drive a serve node (or cluster) with concurrent sample requests and\n\
             report throughput and latency percentiles.\n\
             \n\
             Required:\n\
               --endpoints A[,B,..] serve addresses; a multi-endpoint list routes by the\n\
                                    cluster's consistent-hash ring and fails over\n\
             Options:\n\
               --clients M          concurrent client threads (default 4)\n\
               --duration-secs S    how long to generate load (default 5)\n\
               --keys K             distinct sample keys in the workload (default 8)\n\
               --edges M            edge count per generated graph (default 200)\n\
               --algo SPEC          chain spec (default par-global-es)\n\
               --supersteps K       supersteps per sample (default 20)\n\
               --json               print the summary as one JSON object (for CI)"
        }
        "trace" => {
            "gesmc trace TRACE_ID --endpoints A[,B,...] [options]\n\
             Reconstruct one distributed request: fetch the trace's span\n\
             fragments from every listed serve node (GET /v1/debug/trace/{id}),\n\
             join them on span ids, and render an ASCII waterfall — one line\n\
             per span, bars positioned on the trace's wall-clock window.\n\
             \n\
             Trace ids come from the client SDK (Sample::trace_id), the\n\
             X-Gesmc-Trace-Id response header, or GET /v1/debug/traces.\n\
             \n\
             Required:\n\
               TRACE_ID             the 32-hex trace id to reconstruct\n\
               --endpoints A[,B,..] serve addresses to collect fragments from\n\
             Options:\n\
               --width N            waterfall bar width in columns (default 32)\n\
               --json               print the joined spans as one JSON object"
        }
        _ => return None,
    })
}

/// Levenshtein edit distance, for unknown-subcommand suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut previous_diagonal = row[0];
        row[0] = i + 1;
        for (j, &cb) in b_chars.iter().enumerate() {
            let substitution = previous_diagonal + usize::from(ca != cb);
            previous_diagonal = row[j + 1];
            row[j + 1] = substitution.min(row[j] + 1).min(previous_diagonal + 1);
        }
    }
    row[b_chars.len()]
}

/// The closest known subcommand, if any is close enough to be a likely typo.
fn nearest_subcommand(unknown: &str) -> Option<&'static str> {
    SUBCOMMANDS
        .iter()
        .map(|&candidate| (edit_distance(unknown, candidate), candidate))
        .min()
        .filter(|&(distance, candidate)| distance <= candidate.len().div_ceil(2).min(3))
        .map(|(_, candidate)| candidate)
}

/// Split raw arguments into positional arguments and `--flag value` pairs.
/// Flags listed in `boolean_flags` take no value (their presence maps to
/// `"true"`).
fn parse_args(
    args: &[String],
    boolean_flags: &[&str],
) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = if boolean_flags.contains(&name) {
                "true".to_string()
            } else {
                iter.next().ok_or_else(|| format!("flag --{name} needs a value"))?.clone()
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

/// Parse an optional numeric flag, naming the flag in the error message.
fn parse_flag<T: FromStr>(flags: &HashMap<String, String>, name: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        None => Ok(None),
        Some(raw) => {
            raw.parse().map(Some).map_err(|e| format!("invalid value {raw:?} for --{name}: {e}"))
        }
    }
}

/// Parse an optional numeric flag with a default.
fn parse_flag_or<T: FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    Ok(parse_flag(flags, name)?.unwrap_or(default))
}

fn require<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a String, String> {
    flags.get(name).ok_or_else(|| format!("missing required flag --{name}"))
}

fn no_positionals(command: &str, positional: &[String]) -> Result<(), String> {
    if let Some(unexpected) = positional.first() {
        Err(format!("{command} takes no positional arguments (got {unexpected:?})"))
    } else {
        Ok(())
    }
}

/// Reject misspelled flags instead of silently ignoring them.
fn reject_unknown_flags(
    command: &str,
    flags: &HashMap<String, String>,
    allowed: &[&str],
) -> Result<(), String> {
    let mut unknown: Vec<&str> =
        flags.keys().map(String::as_str).filter(|name| !allowed.contains(name)).collect();
    if unknown.is_empty() {
        return Ok(());
    }
    unknown.sort_unstable();
    let listed: Vec<String> = unknown.iter().map(|name| format!("--{name}")).collect();
    Err(format!(
        "unknown flag(s) for {command}: {} (accepted: {})",
        listed.join(", "),
        allowed.iter().map(|name| format!("--{name}")).collect::<Vec<_>>().join(", ")
    ))
}

/// Parse an `--algo` value and build the chain through the default registry.
fn build_chain(
    spec_text: &str,
    graph: EdgeListGraph,
    seed: u64,
) -> Result<Box<dyn EdgeSwitching + Send>, String> {
    let spec = ChainSpec::parse(spec_text).map_err(|e| format!("{e}"))?;
    default_registry().build(&spec, graph, seed).map_err(|e| format!("{e}"))
}

/// Default chunk-cache budget for `--mmap` runs: 64 MiB.
const DEFAULT_MEMORY_BUDGET: usize = 64 << 20;

/// Parse the shared `--mmap` / `--memory-budget BYTES` pair.  Returns the
/// budget when `--mmap` is given; rejects a budget without `--mmap`.
fn parse_mmap_flags(flags: &HashMap<String, String>) -> Result<Option<usize>, String> {
    let budget: usize = parse_flag_or(flags, "memory-budget", DEFAULT_MEMORY_BUDGET)?;
    if flags.contains_key("mmap") {
        Ok(Some(budget))
    } else if flags.contains_key("memory-budget") {
        Err("--memory-budget needs --mmap".to_string())
    } else {
        Ok(None)
    }
}

fn require_binary_input(input: &str) -> Result<(), String> {
    match is_binary_edge_list_file(input) {
        Ok(true) => Ok(()),
        Ok(false) => Err(format!(
            "--mmap needs a binary GESMCEL1 input, but {input} is a plain-text edge list \
             (generate one with `gesmc generate --output {input}.el`)"
        )),
        Err(e) => Err(format!("{input}: {e}")),
    }
}

fn cmd_randomize(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    no_positionals("randomize", positional)?;
    reject_unknown_flags(
        "randomize",
        flags,
        &["input", "output", "algo", "supersteps", "seed", "threads", "mmap", "memory-budget"],
    )?;
    let input = require(flags, "input")?;
    let output = require(flags, "output")?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("par-global-es");
    let supersteps: usize = parse_flag_or(flags, "supersteps", 20)?;
    let seed: u64 = parse_flag_or(flags, "seed", 1)?;
    if let Some(threads) = parse_flag::<usize>(flags, "threads")? {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .map_err(|e| format!("cannot configure thread pool: {e}"))?;
    }

    if let Some(budget) = parse_mmap_flags(flags)? {
        // Out-of-core path: the graph never touches the heap.  The chain
        // runs over a disk-backed store (bounded chunk cache) and streams
        // the final state to `output` — byte-identical to the in-memory
        // path at the same seed, only the memory footprint differs.
        require_binary_input(input)?;
        let spec = ChainSpec::parse(algo).map_err(|e| format!("{e}"))?;
        gesmc_obs::info!(
            target: "gesmc::randomize",
            "out-of-core: {input} under a {budget} B chunk budget ({algo}, {supersteps} supersteps)"
        );
        let job = ExternalJob::new("randomize", input, spec, budget)
            .supersteps(supersteps as u64)
            .seed(seed)
            .output(ExternalOutput::FinalFile(PathBuf::from(output)));
        let report = run_external_job(default_registry(), &job).map_err(|e| format!("{e}"))?;
        gesmc_obs::info!(target: "gesmc::randomize", "{}", report.summary());
        gesmc_obs::info!(target: "gesmc::randomize", "wrote {output}");
        return Ok(());
    }

    // In-memory path; binary inputs round-trip to binary outputs so the two
    // paths stay `cmp`-comparable.
    let binary = is_binary_edge_list_file(input).map_err(|e| format!("{input}: {e}"))?;
    let graph = if binary {
        read_edge_list_binary_file(input).map_err(|e| format!("{e}"))?
    } else {
        read_edge_list_file(input).map_err(|e| format!("{e}"))?
    };
    let degrees = graph.degrees();
    gesmc_obs::info!(
        target: "gesmc::randomize",
        "loaded {}: n = {}, m = {}, max degree = {}",
        input,
        graph.num_nodes(),
        graph.num_edges(),
        degrees.max_degree()
    );

    let mut chain = build_chain(algo, graph, seed)?;
    let stats = chain.run_supersteps(supersteps);
    let result = chain.graph();
    if result.degrees() != degrees {
        return Err(format!(
            "internal error: {} did not preserve the degree sequence",
            chain.name()
        ));
    }

    if binary {
        write_edge_list_binary_file(output, &result).map_err(|e| format!("{e}"))?;
    } else {
        write_edge_list_file(output, &result).map_err(|e| format!("{e}"))?;
    }
    gesmc_obs::info!(
        target: "gesmc::randomize",
        "{}: {} supersteps, {:.1}% of {} switches legal, {:.3} s total",
        chain.name(),
        stats.num_supersteps(),
        100.0 * stats.acceptance_rate(),
        stats.total_requested(),
        stats.total_duration().as_secs_f64()
    );
    gesmc_obs::info!(target: "gesmc::randomize", "wrote {output}");
    Ok(())
}

fn cmd_generate(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    no_positionals("generate", positional)?;
    reject_unknown_flags(
        "generate",
        flags,
        &["family", "output", "edges", "seed", "gamma", "nodes"],
    )?;
    let family = require(flags, "family")?;
    let output = require(flags, "output")?;
    let edges: usize =
        parse_flag(flags, "edges")?.ok_or("missing required flag --edges".to_string())?;
    let seed: u64 = parse_flag_or(flags, "seed", 1)?;
    let gamma: f64 = parse_flag_or(flags, "gamma", 2.5)?;
    let nodes: Option<usize> = parse_flag(flags, "nodes")?;

    // A `.el` output selects the binary GESMCEL1 format.  For `gnp` the
    // edges stream straight from the generator to the file in bounded
    // chunks (temp file, in-place header patch, atomic rename) — the graph
    // is never materialised, so `--edges` can exceed RAM.
    let binary = std::path::Path::new(output.as_str()).extension().is_some_and(|ext| ext == "el");
    if binary && family == "gnp" {
        let n = nodes.unwrap_or(edges / 8);
        let written = write_syn_gnp_binary(output, seed, n, edges).map_err(|e| format!("{e}"))?;
        gesmc_obs::info!(
            target: "gesmc::generate",
            "generated gnp (streamed): n = {n}, m = {written}, \
             avg degree = {:.2} -> {output}",
            if n == 0 { 0.0 } else { 2.0 * written as f64 / n as f64 }
        );
        return Ok(());
    }

    let graph = match family.as_str() {
        "gnp" => syn_gnp_graph(seed, nodes.unwrap_or(edges / 8), edges),
        "pld" => syn_pld_graph(seed, nodes.unwrap_or(edges / 3), gamma),
        "road" => family_graph(seed, GraphFamily::RoadLike, edges).graph,
        "mesh" => family_graph(seed, GraphFamily::Mesh, edges).graph,
        "dense" => family_graph(seed, GraphFamily::Dense, edges).graph,
        other => return Err(format!("unknown family {other:?}")),
    };
    if binary {
        write_edge_list_binary_file(output, &graph).map_err(|e| format!("{e}"))?;
    } else {
        write_edge_list_file(output, &graph).map_err(|e| format!("{e}"))?;
    }
    gesmc_obs::info!(
        target: "gesmc::generate",
        "generated {family}: n = {}, m = {}, avg degree = {:.2} -> {output}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );
    Ok(())
}

fn cmd_analyze(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    no_positionals("analyze", positional)?;
    reject_unknown_flags("analyze", flags, &["input", "algo", "supersteps", "seed"])?;
    let input = require(flags, "input")?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("seq-global-es");
    let supersteps: usize = parse_flag_or(flags, "supersteps", 30)?;
    let seed: u64 = parse_flag_or(flags, "seed", 1)?;

    let graph = read_edge_list_file(input).map_err(|e| format!("{e}"))?;
    let thinnings: Vec<usize> =
        (0..).map(|i| 1usize << i).take_while(|&k| k <= supersteps.max(1)).collect();

    // Any registered chain analyses: the harness only needs `EdgeSwitching`.
    let mut chain = build_chain(algo, graph.clone(), seed)?;
    let profile = mixing_profile(chain.as_mut(), &graph, supersteps, &thinnings);

    println!("algorithm,thinning,non_independent_fraction");
    for (k, frac) in &profile.points {
        println!("{},{k},{frac:.6}", profile.chain);
    }
    Ok(())
}

/// `gesmc algorithms`: list every registered chain with its parameters,
/// defaults and capabilities — sourced from the default registry, so the
/// listing can never drift from what the engine actually builds.
fn cmd_algorithms(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    no_positionals("algorithms", positional)?;
    reject_unknown_flags("algorithms", flags, &["names"])?;
    let registry = default_registry();
    if flags.contains_key("names") {
        for info in registry.infos() {
            println!("{}", info.name);
        }
        return Ok(());
    }
    println!("{} registered chains (spec syntax: name[?param=value&...]):", registry.len());
    for info in registry.infos() {
        let mut capabilities = vec![
            if info.exact { "exact" } else { "inexact" },
            if info.parallel { "parallel" } else { "sequential" },
        ];
        if info.snapshot {
            capabilities.push("snapshot/resume");
        }
        println!();
        if info.aliases.is_empty() {
            println!("{}  [{}]", info.name, capabilities.join(", "));
        } else {
            println!(
                "{}  [{}]  (alias: {})",
                info.name,
                capabilities.join(", "),
                info.aliases.join(", ")
            );
        }
        println!("    {}", info.summary);
        if info.params.is_empty() {
            println!("    parameters: none");
        } else {
            for param in info.params {
                println!(
                    "    {} ({}, default {}): {}",
                    param.name,
                    param.kind.name(),
                    param.default,
                    param.doc
                );
            }
        }
    }
    Ok(())
}

/// `gesmc batch manifest.json`: run every job of the manifest over the
/// engine's worker pool, streaming thinned samples to per-job files.
fn cmd_batch(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let manifest_path = match positional {
        [path] => path,
        [] => return Err("batch needs a manifest path: gesmc batch manifest.json".to_string()),
        more => return Err(format!("batch takes one manifest path, got {}", more.len())),
    };
    reject_unknown_flags("batch", flags, &["workers", "mmap", "memory-budget"])?;
    let mut manifest = Manifest::from_file(manifest_path).map_err(|e| format!("{e}"))?;
    if let Some(workers) = parse_flag::<usize>(flags, "workers")? {
        manifest.workers = workers;
    }
    if let Some(budget) = parse_mmap_flags(flags)? {
        return batch_external(manifest_path, &manifest, budget);
    }
    gesmc_obs::info!(
        target: "gesmc::batch",
        "batch {}: {} jobs over {} workers -> {}",
        manifest_path,
        manifest.jobs.len(),
        if manifest.workers == 0 { "hardware".to_string() } else { manifest.workers.to_string() },
        manifest.output_dir.display()
    );

    let outcomes = run_batch(&manifest).map_err(|e| format!("{e}"))?;
    let mut failures = 0usize;
    for outcome in &outcomes {
        match &outcome.result {
            Ok(report) => {
                gesmc_obs::info!(target: "gesmc::batch", id: outcome.job, "{}", report.summary());
            }
            Err(e) => {
                failures += 1;
                gesmc_obs::error!(target: "gesmc::batch", id: outcome.job, "FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} jobs failed", outcomes.len()));
    }
    gesmc_obs::info!(target: "gesmc::batch", "all {} jobs finished", outcomes.len());
    Ok(())
}

/// `gesmc batch --mmap`: run every manifest job out-of-core, one at a time
/// (each job owns the chunk budget), streaming binary samples into the
/// manifest's output directory.  Jobs need a binary `GESMCEL1` file source
/// and a store-capable chain; anything else fails that job, not the batch.
fn batch_external(manifest_path: &str, manifest: &Manifest, budget: usize) -> Result<(), String> {
    std::fs::create_dir_all(&manifest.output_dir).map_err(|e| format!("{e}"))?;
    if let Some(dir) = &manifest.checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{e}"))?;
    }
    gesmc_obs::info!(
        target: "gesmc::batch",
        "batch {manifest_path}: {} jobs out-of-core ({budget} B budget each) -> {}",
        manifest.jobs.len(),
        manifest.output_dir.display()
    );
    let mut failures = 0usize;
    for spec in &manifest.jobs {
        let result = external_job_from_spec(spec, manifest, budget)
            .and_then(|job| run_external_job(default_registry(), &job).map_err(|e| format!("{e}")));
        match result {
            Ok(report) => {
                gesmc_obs::info!(target: "gesmc::batch", id: spec.name, "{}", report.summary());
            }
            Err(e) => {
                failures += 1;
                gesmc_obs::error!(target: "gesmc::batch", id: spec.name, "FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} jobs failed", manifest.jobs.len()));
    }
    gesmc_obs::info!(target: "gesmc::batch", "all {} jobs finished", manifest.jobs.len());
    Ok(())
}

/// Map one manifest [`JobSpec`] onto an [`ExternalJob`].
fn external_job_from_spec(
    spec: &JobSpec,
    manifest: &Manifest,
    budget: usize,
) -> Result<ExternalJob, String> {
    let GraphSource::File(path) = &spec.source else {
        return Err("--mmap requires a file graph source".to_string());
    };
    let input = path.to_string_lossy();
    require_binary_input(&input)?;
    let mut job = ExternalJob::new(spec.name.clone(), path, spec.algorithm.clone(), budget)
        .supersteps(spec.supersteps)
        .thinning(spec.thinning)
        .seed(spec.seed)
        .scratch(manifest.output_dir.join(format!("{}.scratch.el", spec.name)))
        .output(ExternalOutput::Directory(manifest.output_dir.clone()));
    if let Some(every) = spec.checkpoint_every {
        if let Some(dir) = spec.checkpoint_dir.clone().or_else(|| manifest.checkpoint_dir.clone()) {
            job = job.checkpoint(every, dir);
        }
    }
    Ok(job)
}

/// `gesmc resume job.ckpt`: continue an interrupted job from its checkpoint,
/// bit-identically to a run that was never interrupted.
fn cmd_resume(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let checkpoint_path = match positional {
        [path] => path,
        [] => return Err("resume needs a checkpoint path: gesmc resume job.ckpt".to_string()),
        more => return Err(format!("resume takes one checkpoint path, got {}", more.len())),
    };
    reject_unknown_flags(
        "resume",
        flags,
        &[
            "samples-dir",
            "supersteps",
            "threads",
            "checkpoint-every",
            "checkpoint-dir",
            "mmap",
            "memory-budget",
        ],
    )?;
    if let Some(budget) = parse_mmap_flags(flags)? {
        return resume_external(checkpoint_path, flags, budget);
    }
    let checkpoint = Checkpoint::read_from_file(checkpoint_path).map_err(|e| format!("{e}"))?;
    // Resolve the checkpoint header through the registry (it accepts the
    // recorded chain name); unknown chains fail here with the known list.
    let info = default_registry().resolve(checkpoint.chain_name()).map_err(|e| format!("{e}"))?;
    let graph = checkpoint.snapshot.graph().map_err(|e| format!("{e}"))?;

    let mut spec = JobSpec::new(
        checkpoint.job_name.clone(),
        GraphSource::InMemory(graph),
        ChainSpec::new(info.name),
    )
    .supersteps(checkpoint.total_supersteps)
    .thinning(checkpoint.thinning)
    .seed(checkpoint.snapshot.seed)
    .loop_probability(checkpoint.snapshot.loop_probability)
    .prefetch(checkpoint.snapshot.prefetch);
    if let Some(supersteps) = parse_flag::<u64>(flags, "supersteps")? {
        if supersteps <= checkpoint.snapshot.supersteps_done {
            return Err(format!(
                "--supersteps {supersteps} is not beyond the checkpoint's superstep {}",
                checkpoint.snapshot.supersteps_done
            ));
        }
        spec.supersteps = supersteps;
    }
    if let Some(threads) = parse_flag::<usize>(flags, "threads")? {
        spec.threads = Some(threads);
    }
    // Inexact parallel chains (naive-par-es) interleave switches racily
    // across threads, so their resumed trajectory is only a function of the
    // checkpoint state under a single-threaded pool (see
    // `NaiveParES::snapshot`).  The registry's capability flags identify
    // them.
    if info.parallel && !info.exact && spec.threads != Some(1) {
        gesmc_obs::warn!(
            target: "gesmc::resume",
            "resuming a {} checkpoint with more than one thread; \
             the interleaving of switches is racy, so the resumed run will NOT be \
             bit-identical to the uninterrupted one (pass --threads 1 for reproducibility)",
            info.name
        );
    }
    // Keep checkpointing during the resumed run, so a second interruption
    // does not lose the progress since this one.  The interval is not stored
    // in the checkpoint file; `--checkpoint-every` re-enables it, writing to
    // the resumed checkpoint's own directory unless overridden.
    if let Some(every) = parse_flag::<u64>(flags, "checkpoint-every")? {
        let default_dir = std::path::Path::new(checkpoint_path)
            .parent()
            .filter(|dir| !dir.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."))
            .to_path_buf();
        spec.checkpoint_every = Some(every);
        spec.checkpoint_dir =
            Some(flags.get("checkpoint-dir").map(PathBuf::from).unwrap_or(default_dir));
    } else if flags.contains_key("checkpoint-dir") {
        return Err("--checkpoint-dir needs --checkpoint-every".to_string());
    }

    let samples_dir = flags.get("samples-dir").map(String::as_str).unwrap_or("samples");
    gesmc_obs::info!(
        target: "gesmc::resume",
        id: checkpoint.job_name,
        "resuming ({}) at superstep {} of {}, samples -> {samples_dir}",
        info.name, checkpoint.snapshot.supersteps_done, spec.supersteps
    );

    let mut sink =
        EdgeListFileSink::new(samples_dir, &checkpoint.job_name).map_err(|e| format!("{e}"))?;
    let report =
        gesmc_engine::run_job(&spec, &mut sink, Some(&checkpoint)).map_err(|e| format!("{e}"))?;
    gesmc_obs::info!(target: "gesmc::resume", id: checkpoint.job_name, "{}", report.summary());
    for path in sink.written() {
        gesmc_obs::info!(target: "gesmc::resume", "wrote {}", path.display());
    }
    Ok(())
}

/// `gesmc resume --mmap`: continue an interrupted job out-of-core.  Only the
/// checkpoint header is read up front; the edge payload streams straight
/// into a fresh scratch store, so resuming never needs the graph in memory.
fn resume_external(
    checkpoint_path: &str,
    flags: &HashMap<String, String>,
    budget: usize,
) -> Result<(), String> {
    let reader = CheckpointReader::open(checkpoint_path).map_err(|e| format!("{e}"))?;
    let meta = reader.meta().clone();
    drop(reader);
    let mut supersteps = meta.total_supersteps;
    if let Some(t) = parse_flag::<u64>(flags, "supersteps")? {
        if t <= meta.snapshot.supersteps_done {
            return Err(format!(
                "--supersteps {t} is not beyond the checkpoint's superstep {}",
                meta.snapshot.supersteps_done
            ));
        }
        supersteps = t;
    }
    let samples_dir = flags.get("samples-dir").map(String::as_str).unwrap_or("samples");
    std::fs::create_dir_all(samples_dir).map_err(|e| format!("{e}"))?;
    // The chain and its parameters come from the checkpoint itself (the
    // spec placed here is ignored by the resume path).
    let mut job = ExternalJob::new(
        meta.job_name.clone(),
        checkpoint_path,
        ChainSpec::new(meta.snapshot.algorithm.clone()),
        budget,
    )
    .supersteps(supersteps)
    .thinning(meta.thinning)
    .scratch(std::path::Path::new(checkpoint_path).with_extension("scratch.el"))
    .output(ExternalOutput::Directory(PathBuf::from(samples_dir)));
    if let Some(every) = parse_flag::<u64>(flags, "checkpoint-every")? {
        let default_dir = std::path::Path::new(checkpoint_path)
            .parent()
            .filter(|dir| !dir.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."))
            .to_path_buf();
        job.checkpoint_every = Some(every);
        job.checkpoint_dir =
            Some(flags.get("checkpoint-dir").map(PathBuf::from).unwrap_or(default_dir));
    } else if flags.contains_key("checkpoint-dir") {
        return Err("--checkpoint-dir needs --checkpoint-every".to_string());
    }
    gesmc_obs::info!(
        target: "gesmc::resume",
        id: meta.job_name,
        "resuming out-of-core ({}) at superstep {} of {supersteps}, \
         budget {budget} B, samples -> {samples_dir}",
        meta.snapshot.algorithm,
        meta.snapshot.supersteps_done
    );
    let report = resume_external_job(default_registry(), &job, checkpoint_path)
        .map_err(|e| format!("{e}"))?;
    gesmc_obs::info!(target: "gesmc::resume", id: meta.job_name, "{}", report.summary());
    Ok(())
}

/// `gesmc study study.json`: run an end-to-end mixing-time study — sweep
/// {chain} × {graph}, stream per-superstep metrics, aggregate the
/// non-independence fractions per thinning value into deterministic JSON/CSV
/// reports (the data behind Figs. 2-3).
fn cmd_study(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let spec_path = match positional {
        [path] => path,
        [] => return Err("study needs a spec path: gesmc study study.json".to_string()),
        more => return Err(format!("study takes one spec path, got {}", more.len())),
    };
    reject_unknown_flags(
        "study",
        flags,
        &["scale", "workers", "threads-per-job", "output-dir", "resume"],
    )?;
    let spec = StudySpec::from_file(spec_path).map_err(|e| format!("{e}"))?;
    let scale = match flags.get("scale") {
        None => StudyScale::Smoke,
        Some(s) => StudyScale::parse(s).ok_or_else(|| {
            format!("invalid value {s:?} for --scale (expected smoke, paper or xl)")
        })?,
    };
    let opts = StudyOptions {
        scale,
        workers: parse_flag(flags, "workers")?,
        threads_per_job: parse_flag(flags, "threads-per-job")?,
        output_dir: flags.get("output-dir").map(PathBuf::from),
        resume: flags.contains_key("resume"),
    };
    gesmc_obs::info!(
        target: "gesmc::study",
        "study {:?}: {} cells ({} chains x {} graphs) at {} scale, {} supersteps each",
        spec.name,
        spec.chains.len() * spec.graphs.len(),
        spec.chains.len(),
        spec.graphs.len(),
        scale.name(),
        spec.supersteps_at(scale)
    );

    let run = run_study(&spec, &opts).map_err(|e| format!("{e}"))?;
    if run.resumed_cells > 0 {
        gesmc_obs::info!(
            target: "gesmc::study",
            "reused {} completed cells from an earlier run",
            run.resumed_cells
        );
    }
    for cell in &run.report.cells {
        let first = cell.points.first().map(|&(_, f)| f).unwrap_or(0.0);
        let last = cell.points.last().map(|&(_, f)| f).unwrap_or(0.0);
        let timing =
            cell.wall_clock_secs.map_or_else(|| "cached".to_string(), |s| format!("{s:.3} s"));
        gesmc_obs::info!(
            target: "gesmc::study",
            id: cell.job,
            "n = {}, m = {}, non-independent {:.3} (k = {}) -> {:.3} (k = {}), {timing}",
            cell.nodes,
            cell.edges,
            first,
            cell.points.first().map(|&(k, _)| k).unwrap_or(0),
            last,
            cell.points.last().map(|&(k, _)| k).unwrap_or(0),
        );
    }
    gesmc_obs::info!(target: "gesmc::study", "wrote {}", run.json_path.display());
    Ok(())
}

/// `gesmc serve`: run the HTTP sampling service until a graceful shutdown
/// is requested (`POST /v1/shutdown` with `--allow-shutdown`) or the process
/// is killed.
fn cmd_serve(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    no_positionals("serve", positional)?;
    reject_unknown_flags(
        "serve",
        flags,
        &[
            "addr",
            "workers",
            "http-workers",
            "cache-entries",
            "max-pending",
            "allow-shutdown",
            "data-dir",
            "checkpoint-every",
            "peers",
            "advertise",
            "log-format",
            "log-level",
        ],
    )?;
    // Configure logging first so every line below (and the server's own
    // request logs) comes out in the requested shape.  A non-empty
    // `GESMC_LOG` still overrides `--log-level` for filtering.
    let format = match flags.get("log-format") {
        None => gesmc_obs::LogFormat::Text,
        Some(raw) => gesmc_obs::LogFormat::parse(raw).ok_or_else(|| {
            format!("invalid value {raw:?} for --log-format (expected text or json)")
        })?,
    };
    let level = match flags.get("log-level") {
        None => gesmc_obs::Level::Info,
        Some(raw) => gesmc_obs::Level::parse(raw).ok_or_else(|| {
            format!("invalid value {raw:?} for --log-level (expected trace, debug, info, warn, or error)")
        })?,
    };
    gesmc_obs::log::configure(format, level);
    let mut config = ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    if let Some(workers) = parse_flag::<usize>(flags, "workers")? {
        config.engine_workers = workers;
    }
    if let Some(http_workers) = parse_flag::<usize>(flags, "http-workers")? {
        if http_workers == 0 {
            return Err("--http-workers must be at least 1".to_string());
        }
        config.http_workers = http_workers;
    }
    if let Some(entries) = parse_flag::<usize>(flags, "cache-entries")? {
        config.cache_entries = entries;
    }
    if let Some(pending) = parse_flag::<usize>(flags, "max-pending")? {
        config.max_pending = pending;
    }
    config.allow_shutdown = flags.contains_key("allow-shutdown");
    if let Some(dir) = flags.get("data-dir") {
        config.data_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(every) = parse_flag::<u64>(flags, "checkpoint-every")? {
        if config.data_dir.is_none() {
            return Err("--checkpoint-every needs --data-dir".to_string());
        }
        config.checkpoint_every = every;
    }
    match (flags.get("peers"), flags.get("advertise")) {
        (Some(raw), advertise) => {
            let peers: Vec<String> =
                raw.split(',').map(str::trim).filter(|p| !p.is_empty()).map(String::from).collect();
            if peers.len() < 2 {
                return Err("--peers needs at least two comma-separated addresses".to_string());
            }
            // The advertise address is how *other* nodes reach this one; it
            // must match a peers entry byte-for-byte so all ring positions
            // agree.  Defaulting to --addr covers the common spelling where
            // the bind address doubles as the public one.
            let advertise = advertise.cloned().unwrap_or_else(|| config.addr.clone());
            config.cluster = Some(gesmc_serve::ClusterConfig { advertise, peers });
        }
        (None, Some(_)) => return Err("--advertise needs --peers".to_string()),
        (None, None) => {}
    }

    let server =
        Server::bind(config.clone()).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    gesmc_obs::info!(
        target: "gesmc::serve",
        "serving on http://{} ({} engine workers, {} http workers, cache {} entries, \
         admission bound {})",
        server.local_addr(),
        if config.engine_workers == 0 {
            "all".to_string()
        } else {
            config.engine_workers.to_string()
        },
        config.http_workers,
        config.cache_entries,
        config.max_pending
    );
    if let Some(dir) = &config.data_dir {
        gesmc_obs::info!(
            target: "gesmc::serve",
            "durability on: data dir {}, checkpoint every {} supersteps",
            dir.display(),
            config.checkpoint_every
        );
    }
    if let Some(cluster) = &config.cluster {
        gesmc_obs::info!(
            target: "gesmc::serve",
            "cluster of {}: advertising as {} among [{}]",
            cluster.peers.len(),
            cluster.advertise,
            cluster.peers.join(", ")
        );
    }
    if config.allow_shutdown {
        gesmc_obs::info!(target: "gesmc::serve", "POST /v1/shutdown stops the server gracefully");
    }
    server.wait();
    gesmc_obs::info!(target: "gesmc::serve", "shut down cleanly");
    Ok(())
}

/// Per-thread tallies of one loadgen worker, merged after the run.
#[derive(Default)]
struct LoadgenTally {
    /// Bucketed latencies: constant-size per thread, whatever the run
    /// length; percentiles are derived from the merged buckets.
    latency: latency::LatencyBuckets,
    hits: u64,
    misses: u64,
    coalesced: u64,
    errors: u64,
    /// First few error messages, for the summary.
    error_samples: Vec<String>,
}

/// `gesmc loadgen`: drive one or more serve nodes with concurrent sample
/// requests through the typed client (ring routing, failover, backoff) and
/// report request rate, latency percentiles, and cache behaviour.
fn cmd_loadgen(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    no_positionals("loadgen", positional)?;
    reject_unknown_flags(
        "loadgen",
        flags,
        &["endpoints", "clients", "duration-secs", "keys", "edges", "algo", "supersteps", "json"],
    )?;
    let endpoints: Vec<String> = require(flags, "endpoints")?
        .split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .map(String::from)
        .collect();
    if endpoints.is_empty() {
        return Err("--endpoints needs at least one address".to_string());
    }
    let clients: usize = parse_flag_or(flags, "clients", 4)?;
    if clients == 0 {
        return Err("--clients must be at least 1".to_string());
    }
    let duration_secs: u64 = parse_flag_or(flags, "duration-secs", 5)?;
    let keys: u64 = parse_flag_or(flags, "keys", 8)?;
    if keys == 0 {
        return Err("--keys must be at least 1".to_string());
    }
    let edges: usize = parse_flag_or(flags, "edges", 200)?;
    let algo = flags.get("algo").map(String::as_str).unwrap_or("par-global-es");
    let supersteps: u64 = parse_flag_or(flags, "supersteps", 20)?;

    let client = gesmc_client::Client::builder(endpoints.clone())
        .build()
        .map_err(|e| format!("cannot build client: {e}"))?;
    // The workload: `keys` distinct cache keys (seed varies), spread over
    // the ring when several endpoints are given.  Validate them eagerly so a
    // bad --algo fails before any thread spawns.
    let specs: Vec<gesmc_client::SampleSpec> = (0..keys)
        .map(|i| {
            gesmc_client::SampleSpec::new(format!("pld:m={edges},seed={}", i + 1))
                .algo(algo)
                .supersteps(supersteps)
        })
        .collect();
    for spec in &specs {
        spec.key().map_err(|e| format!("bad workload spec: {e}"))?;
    }
    let specs = std::sync::Arc::new(specs);

    let start = std::time::Instant::now();
    let deadline = start + std::time::Duration::from_secs(duration_secs);
    let tallies: Vec<LoadgenTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|worker| {
                let client = client.clone();
                let specs = std::sync::Arc::clone(&specs);
                scope.spawn(move || {
                    let mut tally = LoadgenTally::default();
                    let mut n = worker; // stagger the key order across workers
                    while std::time::Instant::now() < deadline {
                        let spec = &specs[n % specs.len()];
                        n += 1;
                        let t0 = std::time::Instant::now();
                        match client.samples().get(spec) {
                            Ok(sample) => {
                                tally.latency.record_us(t0.elapsed().as_micros() as u64);
                                match sample.cache.as_str() {
                                    "hit" => tally.hits += 1,
                                    "coalesced" => tally.coalesced += 1,
                                    _ => tally.misses += 1,
                                }
                            }
                            Err(e) => {
                                tally.errors += 1;
                                if tally.error_samples.len() < 3 {
                                    tally.error_samples.push(e.to_string());
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut merged = LoadgenTally::default();
    for tally in tallies {
        merged.latency.merge(&tally.latency);
        merged.hits += tally.hits;
        merged.misses += tally.misses;
        merged.coalesced += tally.coalesced;
        merged.errors += tally.errors;
        for msg in tally.error_samples {
            if merged.error_samples.len() < 3 {
                merged.error_samples.push(msg);
            }
        }
    }
    let requests = merged.latency.count();
    let rps = if elapsed > 0.0 { requests as f64 / elapsed } else { 0.0 };
    let (p50, p90, p99) = (
        merged.latency.percentile_us(0.50),
        merged.latency.percentile_us(0.90),
        merged.latency.percentile_us(0.99),
    );

    if flags.contains_key("json") {
        let mut map = serde_json::Map::new();
        map.insert("endpoints".to_string(), serde_json::Value::Number(endpoints.len() as f64));
        map.insert("clients".to_string(), serde_json::Value::Number(clients as f64));
        map.insert("seconds".to_string(), serde_json::Value::Number(elapsed));
        map.insert("requests".to_string(), serde_json::Value::Number(requests as f64));
        map.insert("errors".to_string(), serde_json::Value::Number(merged.errors as f64));
        map.insert("rps".to_string(), serde_json::Value::Number(rps));
        map.insert("hits".to_string(), serde_json::Value::Number(merged.hits as f64));
        map.insert("misses".to_string(), serde_json::Value::Number(merged.misses as f64));
        map.insert("coalesced".to_string(), serde_json::Value::Number(merged.coalesced as f64));
        map.insert("p50_us".to_string(), serde_json::Value::Number(p50 as f64));
        map.insert("p90_us".to_string(), serde_json::Value::Number(p90 as f64));
        map.insert("p99_us".to_string(), serde_json::Value::Number(p99 as f64));
        println!("{}", serde_json::to_string(&serde_json::Value::Object(map)).expect("flat JSON"));
    } else {
        println!(
            "loadgen: {requests} requests in {elapsed:.2} s ({rps:.0} req/s), {} errors",
            merged.errors
        );
        println!(
            "  cache: {} hits, {} misses, {} coalesced over {} keys",
            merged.hits, merged.misses, merged.coalesced, keys
        );
        println!(
            "  latency: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms",
            p50 as f64 / 1e3,
            p90 as f64 / 1e3,
            p99 as f64 / 1e3
        );
    }
    for msg in &merged.error_samples {
        gesmc_obs::warn!(target: "gesmc::loadgen", "sample error: {msg}");
    }
    if requests == 0 {
        return Err(format!(
            "no request succeeded against {} ({} errors)",
            endpoints.join(", "),
            merged.errors
        ));
    }
    Ok(())
}

/// `gesmc trace`: fetch a trace's span fragments from every listed serve
/// node, join them on span ids, and render the cross-process waterfall.
fn cmd_trace(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    reject_unknown_flags("trace", flags, &["endpoints", "width", "json"])?;
    let trace_id = match positional {
        [id] => id.as_str(),
        _ => return Err("trace takes exactly one TRACE_ID argument (32 hex digits)".to_string()),
    };
    if gesmc_obs::TraceId::parse(trace_id).is_none() {
        return Err(format!("trace id {trace_id:?} is not 32 hex digits"));
    }
    let endpoints: Vec<String> = require(flags, "endpoints")?
        .split(',')
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .map(String::from)
        .collect();
    if endpoints.is_empty() {
        return Err("--endpoints needs at least one address".to_string());
    }
    let width: usize = parse_flag_or(flags, "width", 32)?;
    if width == 0 {
        return Err("--width must be at least 1".to_string());
    }

    let path = format!("/v1/debug/trace/{trace_id}");
    let mut fragments = Vec::new();
    for endpoint in &endpoints {
        match gesmc_cluster::request(endpoint, "GET", &path, &[], &[]) {
            Ok(resp) if resp.status == 200 => {
                let text = String::from_utf8_lossy(&resp.body);
                let fragment = waterfall::parse_fragment(&text, trace_id)
                    .map_err(|e| format!("{endpoint}: {e}"))?;
                fragments.push(fragment);
            }
            // 404 is normal: a node that never touched the request (or
            // whose ring evicted the trace) holds no fragment.
            Ok(resp) if resp.status == 404 => {}
            Ok(resp) => return Err(format!("{endpoint}: HTTP {}", resp.status)),
            Err(e) => return Err(format!("cannot reach {endpoint}: {e}")),
        }
    }
    let spans = waterfall::join_fragments(fragments);
    if spans.is_empty() {
        return Err(format!(
            "no node among {} holds trace {trace_id} (the tail sampler may have \
             dropped it, or the ring evicted it; client-originated traces are \
             always kept while resident)",
            endpoints.join(", ")
        ));
    }

    if flags.contains_key("json") {
        let spans_json: Vec<serde_json::Value> = spans
            .iter()
            .map(|span| {
                let mut map = serde_json::Map::new();
                map.insert("span_id".to_string(), serde_json::Value::String(span.span_id.clone()));
                map.insert(
                    "parent_id".to_string(),
                    match &span.parent_id {
                        Some(parent) => serde_json::Value::String(parent.clone()),
                        None => serde_json::Value::Null,
                    },
                );
                map.insert("name".to_string(), serde_json::Value::String(span.name.clone()));
                map.insert("service".to_string(), serde_json::Value::String(span.service.clone()));
                map.insert(
                    "start_unix_us".to_string(),
                    serde_json::Value::Number(span.start_unix_us as f64),
                );
                map.insert(
                    "duration_us".to_string(),
                    serde_json::Value::Number(span.duration_us as f64),
                );
                map.insert("error".to_string(), serde_json::Value::Bool(span.error));
                let mut annotations = serde_json::Map::new();
                for (key, value) in &span.annotations {
                    annotations.insert(key.clone(), serde_json::Value::String(value.clone()));
                }
                map.insert("annotations".to_string(), serde_json::Value::Object(annotations));
                serde_json::Value::Object(map)
            })
            .collect();
        let mut doc = serde_json::Map::new();
        doc.insert("trace_id".to_string(), serde_json::Value::String(trace_id.to_string()));
        doc.insert("spans".to_string(), serde_json::Value::Array(spans_json));
        println!("{}", serde_json::to_string(&serde_json::Value::Object(doc)).expect("flat JSON"));
    } else {
        print!("{}", waterfall::render_waterfall(trace_id, &spans, width));
    }
    Ok(())
}

fn main() -> ExitCode {
    // Spans originated here (the client SDK's fetches, loadgen) are
    // attributed to "cli" in joined trace trees; `serve` overrides this
    // with its advertise address when it binds.
    gesmc_obs::trace::tracer().set_service("cli");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    if matches!(command.as_str(), "--version" | "-V" | "version") {
        println!("gesmc {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let (positional, flags) =
        match parse_args(rest, &["resume", "names", "help", "allow-shutdown", "json", "mmap"]) {
            Ok(parsed) => parsed,
            Err(e) => {
                gesmc_obs::error!(target: "gesmc", "{e}");
                print_usage();
                return ExitCode::FAILURE;
            }
        };
    // `gesmc <subcommand> --help` prints that subcommand's usage and exits
    // successfully, before any flag validation.
    if flags.contains_key("help") {
        match command_help(command) {
            Some(help) => {
                println!("{help}");
                return ExitCode::SUCCESS;
            }
            None => {
                print_usage();
                return ExitCode::SUCCESS;
            }
        }
    }
    let result = match command.as_str() {
        "randomize" => cmd_randomize(&positional, &flags),
        "generate" => cmd_generate(&positional, &flags),
        "analyze" => cmd_analyze(&positional, &flags),
        "algorithms" => cmd_algorithms(&positional, &flags),
        "batch" => cmd_batch(&positional, &flags),
        "resume" => cmd_resume(&positional, &flags),
        "study" => cmd_study(&positional, &flags),
        "serve" => cmd_serve(&positional, &flags),
        "loadgen" => cmd_loadgen(&positional, &flags),
        "trace" => cmd_trace(&positional, &flags),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => match nearest_subcommand(other) {
            Some(suggestion) => {
                Err(format!("unknown subcommand {other:?} (did you mean \"{suggestion}\"?)"))
            }
            None => Err(format!("unknown subcommand {other:?}")),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            gesmc_obs::error!(target: "gesmc", "{e}");
            ExitCode::FAILURE
        }
    }
}
