//! Joining and rendering distributed trace fragments (`gesmc trace`).
//!
//! Every serve node holds only the spans *it* recorded for a trace
//! (`GET /v1/debug/trace/{id}`).  The viewer fetches each node's fragment,
//! joins them on span ids, rebuilds the parent tree, and renders an ASCII
//! waterfall over the trace's wall-clock window.  Span ids are minted
//! per-process but parent links cross process boundaries (the trace header
//! carries the parent's span id), so the joined set forms one tree even
//! when its pieces come from different machines.

use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// One span parsed out of a node's trace fragment.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// 16-hex span id, unique within the trace.
    pub span_id: String,
    /// Parent span id, `None` for the trace root.
    pub parent_id: Option<String>,
    /// Phase name (`request`, `forward`, `compute`, …).
    pub name: String,
    /// The service that recorded the span (a node's advertise address,
    /// `cli`, …).
    pub service: String,
    /// Start time, microseconds since the Unix epoch (recording node's
    /// clock).
    pub start_unix_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Whether the span was marked as an error.
    pub error: bool,
    /// `key=value` annotations in recording order.
    pub annotations: Vec<(String, String)>,
}

/// Parse one `/v1/debug/trace/{id}` document into its spans.  `expect_id`
/// guards against a node answering for a different trace.
pub fn parse_fragment(json: &str, expect_id: &str) -> Result<Vec<TraceSpan>, String> {
    let doc = serde_json::from_str(json).map_err(|e| format!("fragment is not JSON: {e}"))?;
    let trace_id = doc
        .get("trace_id")
        .and_then(Value::as_str)
        .ok_or_else(|| "fragment lacks \"trace_id\"".to_string())?;
    if trace_id != expect_id {
        return Err(format!("fragment is for trace {trace_id}, expected {expect_id}"));
    }
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .ok_or_else(|| "fragment lacks a \"spans\" array".to_string())?;
    let mut out = Vec::with_capacity(spans.len());
    for (i, span) in spans.iter().enumerate() {
        let field_str = |name: &str| {
            span.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("span #{i} lacks string field {name:?}"))
        };
        let field_u64 = |name: &str| {
            span.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("span #{i} lacks integer field {name:?}"))
        };
        let mut annotations = Vec::new();
        if let Some(map) = span.get("annotations").and_then(Value::as_object) {
            for (key, value) in map.iter() {
                if let Some(value) = value.as_str() {
                    annotations.push((key.clone(), value.to_string()));
                }
            }
        }
        out.push(TraceSpan {
            span_id: field_str("span_id")?,
            parent_id: span
                .get("parent_id")
                .filter(|v| !v.is_null())
                .and_then(Value::as_str)
                .map(str::to_string),
            name: field_str("name")?,
            service: field_str("service")?,
            start_unix_us: field_u64("start_unix_us")?,
            duration_us: field_u64("duration_us")?,
            error: span.get("error").and_then(Value::as_bool).unwrap_or(false),
            annotations,
        });
    }
    Ok(out)
}

/// Join fragments from several nodes into one span set: duplicates (the
/// same span id reported twice) keep the first occurrence.
pub fn join_fragments(fragments: Vec<Vec<TraceSpan>>) -> Vec<TraceSpan> {
    let mut seen = HashSet::new();
    let mut joined = Vec::new();
    for fragment in fragments {
        for span in fragment {
            if seen.insert(span.span_id.clone()) {
                joined.push(span);
            }
        }
    }
    joined
}

/// Depth-first order of the joined tree: roots (no parent, or parent not in
/// the set — a fragment may be missing) by start time, children likewise.
fn tree_order(spans: &[TraceSpan]) -> Vec<(usize, usize)> {
    let ids: HashSet<&str> = spans.iter().map(|s| s.span_id.as_str()).collect();
    let mut children: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut roots = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent_id.as_deref().filter(|p| ids.contains(p)) {
            Some(parent) => children.entry(parent).or_default().push(i),
            None => roots.push(i),
        }
    }
    let by_start = |list: &mut Vec<usize>| {
        list.sort_by_key(|&i| (spans[i].start_unix_us, spans[i].span_id.clone()));
    };
    by_start(&mut roots);
    for list in children.values_mut() {
        by_start(list);
    }
    let mut order = Vec::with_capacity(spans.len());
    let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        order.push((i, depth));
        if let Some(kids) = children.get(spans[i].span_id.as_str()) {
            for &kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    order
}

fn format_ms(us: u64) -> String {
    format!("{:.2} ms", us as f64 / 1e3)
}

/// Render the joined span set as an ASCII waterfall: one line per span in
/// tree order, with a `bar_width`-column bar positioned on the trace's
/// wall-clock window.  Clocks of different machines may skew; bars from a
/// remote service are positioned on that machine's own timestamps.
pub fn render_waterfall(trace_id: &str, spans: &[TraceSpan], bar_width: usize) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        let _ = writeln!(out, "trace {trace_id}: no spans");
        return out;
    }
    let services: HashSet<&str> = spans.iter().map(|s| s.service.as_str()).collect();
    let window_start = spans.iter().map(|s| s.start_unix_us).min().unwrap_or(0);
    let window_end = spans
        .iter()
        .map(|s| s.start_unix_us.saturating_add(s.duration_us))
        .max()
        .unwrap_or(window_start);
    let window_us = (window_end - window_start).max(1);
    let _ = writeln!(
        out,
        "trace {trace_id} — {} span{} across {} service{}, {} total",
        spans.len(),
        if spans.len() == 1 { "" } else { "s" },
        services.len(),
        if services.len() == 1 { "" } else { "s" },
        format_ms(window_us),
    );

    let order = tree_order(spans);
    let service_col = spans.iter().map(|s| s.service.len()).max().unwrap_or(0);
    let name_col =
        order.iter().map(|&(i, depth)| 2 * depth + spans[i].name.len()).max().unwrap_or(0);
    for (i, depth) in order {
        let span = &spans[i];
        let offset_us = span.start_unix_us.saturating_sub(window_start);
        let lead = (offset_us as u128 * bar_width as u128 / window_us as u128) as usize;
        let lead = lead.min(bar_width.saturating_sub(1));
        let len = (span.duration_us as u128 * bar_width as u128 / window_us as u128) as usize;
        let len = len.clamp(1, bar_width - lead);
        let mut bar = String::with_capacity(bar_width * 3);
        bar.push_str(&"·".repeat(lead));
        bar.push_str(&"█".repeat(len));
        bar.push_str(&"·".repeat(bar_width - lead - len));
        let label = format!("{:indent$}{}", "", span.name, indent = 2 * depth);
        let mut line = format!(
            "{:<service_col$}  {:<name_col$}  |{bar}|  {:>10}",
            span.service,
            label,
            format_ms(span.duration_us),
        );
        if span.error {
            line.push_str("  ERROR");
        }
        if !span.annotations.is_empty() {
            let mut rendered = String::new();
            for (j, (key, value)) in span.annotations.iter().enumerate() {
                if j > 0 {
                    rendered.push(' ');
                }
                let _ = write!(rendered, "{key}={value}");
            }
            if rendered.len() > 72 {
                rendered.truncate(69);
                rendered.push_str("...");
            }
            let _ = write!(line, "  {rendered}");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: &str,
        parent: Option<&str>,
        name: &str,
        service: &str,
        start: u64,
        dur: u64,
    ) -> TraceSpan {
        TraceSpan {
            span_id: id.to_string(),
            parent_id: parent.map(str::to_string),
            name: name.to_string(),
            service: service.to_string(),
            start_unix_us: start,
            duration_us: dur,
            error: false,
            annotations: Vec::new(),
        }
    }

    #[test]
    fn fragments_parse_and_reject_mismatched_ids() {
        let json = r#"{"trace_id":"aa","service":"n1","spans":[
            {"span_id":"01","parent_id":null,"name":"request","service":"n1",
             "start_unix_us":100,"duration_us":50,"error":false,
             "annotations":{"path":"/v1/sample"}}]}"#;
        let spans = parse_fragment(json, "aa").unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[0].parent_id, None);
        assert_eq!(spans[0].annotations, vec![("path".to_string(), "/v1/sample".to_string())]);
        let err = parse_fragment(json, "bb").unwrap_err();
        assert!(err.contains("expected bb"), "{err}");
        assert!(parse_fragment("{}", "aa").is_err());
        assert!(parse_fragment("not json", "aa").is_err());
    }

    #[test]
    fn join_dedups_on_span_id_first_wins() {
        let a = vec![span("01", None, "request", "n1", 0, 10)];
        let b = vec![
            span("01", None, "request", "n2", 0, 99),
            span("02", Some("01"), "compute", "n2", 2, 6),
        ];
        let joined = join_fragments(vec![a, b]);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].service, "n1", "first fragment wins the duplicate");
        assert_eq!(joined[1].name, "compute");
    }

    #[test]
    fn tree_order_nests_cross_service_children_and_keeps_orphans() {
        let spans = vec![
            span("03", Some("02"), "compute", "n2", 30, 40),
            span("01", None, "client_fetch", "cli", 0, 100),
            span("02", Some("01"), "request", "n2", 20, 60),
            span("09", Some("77"), "orphan", "n3", 5, 1), // parent fragment missing
        ];
        let order = tree_order(&spans);
        let names: Vec<(&str, usize)> =
            order.iter().map(|&(i, d)| (spans[i].name.as_str(), d)).collect();
        assert_eq!(names, vec![("client_fetch", 0), ("request", 1), ("compute", 2), ("orphan", 0)]);
    }

    #[test]
    fn waterfall_renders_one_line_per_span_with_scaled_bars() {
        let mut spans = vec![
            span("01", None, "request", "n1:1", 0, 100),
            span("02", Some("01"), "forward", "n1:1", 10, 80),
            span("03", Some("02"), "request", "n2:2", 15, 70),
        ];
        spans[1].error = true;
        spans[2].annotations.push(("status".to_string(), "200".to_string()));
        let text = render_waterfall("cafe", &spans, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("trace cafe — 3 spans across 2 services"), "{text}");
        assert!(lines[1].contains("request") && lines[1].contains("0.10 ms"), "{text}");
        assert!(lines[2].contains("  forward") && lines[2].contains("ERROR"), "{text}");
        assert!(lines[3].contains("status=200"), "{text}");
        // The root bar spans the full window; the nested ones are shorter.
        let bar_len = |line: &str| line.chars().filter(|&c| c == '█').count();
        assert_eq!(bar_len(lines[1]), 20, "{text}");
        assert!(bar_len(lines[2]) < 20 && bar_len(lines[2]) >= 15, "{text}");
    }

    #[test]
    fn waterfall_survives_empty_and_zero_duration_spans() {
        assert!(render_waterfall("dead", &[], 20).contains("no spans"));
        let spans = vec![span("01", None, "request", "n1", 500, 0)];
        let text = render_waterfall("dead", &spans, 20);
        assert!(text.contains('█'), "zero-duration spans still get a visible bar: {text}");
    }
}
