#!/usr/bin/env bash
# Validate a Prometheus text-format (version 0.0.4) exposition.
#
# Usage: scripts/validate_prometheus.sh [FILE]   (stdin when FILE is omitted)
#
# Checks, line by line and per family:
#   * every sample line parses as `name[{labels}] value`;
#   * every sampled family is preceded by a `# TYPE` declaration;
#   * histogram families are complete and coherent: for each label set,
#     `_bucket` counts are cumulative (non-decreasing in file order), the
#     terminal `le="+Inf"` bucket exists and equals the family's `_count`,
#     and `_sum` is present.
#
# Exits non-zero with a diagnostic on the first violation.
set -euo pipefail

exec awk '
function fail(msg) { printf "validate_prometheus: line %d: %s\n", NR, msg; bad = 1; exit 1 }

/^# TYPE / {
    if (NF != 4) fail("malformed TYPE comment: " $0)
    type[$3] = $4
    next
}
/^# HELP / { next }
/^#/ { next }
/^[[:space:]]*$/ { next }

{
    # Sample line: name[{labels}] value
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|-Inf|NaN)$/)
        fail("unparseable sample line: " $0)
    name = $0; sub(/[{ ].*$/, "", name)
    labels = ""
    if (index($0, "{") > 0) {
        labels = $0
        sub(/^[^{]*\{/, "", labels)
        sub(/\}.*$/, "", labels)
    }
    value = $0; sub(/^.* /, "", value)

    # Resolve histogram component suffixes back to the declared family.
    base = name; kind = "plain"
    if (name ~ /_bucket$/) {
        b = name; sub(/_bucket$/, "", b)
        if (type[b] == "histogram") { base = b; kind = "bucket" }
    } else if (name ~ /_sum$/) {
        b = name; sub(/_sum$/, "", b)
        if (type[b] == "histogram") { base = b; kind = "sum" }
    } else if (name ~ /_count$/) {
        b = name; sub(/_count$/, "", b)
        if (type[b] == "histogram") { base = b; kind = "count" }
    }
    if (!(base in type)) fail("series " name " has no preceding # TYPE")

    if (kind == "plain") next

    # Split the le label out of the label set to key the series.
    le = ""; rest = ""
    n = split(labels, parts, /",/)
    for (i = 1; i <= n; i++) {
        part = parts[i]
        if (i < n) part = part "\""   # re-attach the quote split consumed
        if (part ~ /^le="/) {
            le = part
            sub(/^le="/, "", le); sub(/"$/, "", le)
        } else if (part != "") {
            rest = (rest == "") ? part : rest "," part
        }
    }
    key = base "{" rest "}"

    if (kind == "bucket") {
        if (le == "") fail(name " bucket without an le label")
        if ((key in last_bucket) && value + 0 < last_bucket[key] + 0)
            fail(key " buckets are not cumulative: " value " after " last_bucket[key])
        last_bucket[key] = value
        if (le == "+Inf") inf_count[key] = value
        seen_bucket[key] = 1
    } else if (kind == "count") {
        count_val[key] = value
        seen_count[key] = 1
    } else if (kind == "sum") {
        seen_sum[key] = 1
    }
}

END {
    if (bad) exit 1
    for (key in seen_bucket) {
        if (!(key in inf_count))
            { printf "validate_prometheus: %s lacks an le=\"+Inf\" bucket\n", key; exit 1 }
        if (!(key in seen_count))
            { printf "validate_prometheus: %s lacks a _count series\n", key; exit 1 }
        if (!(key in seen_sum))
            { printf "validate_prometheus: %s lacks a _sum series\n", key; exit 1 }
        if (inf_count[key] + 0 != count_val[key] + 0)
            { printf "validate_prometheus: %s +Inf bucket %s != _count %s\n", \
                     key, inf_count[key], count_val[key]; exit 1 }
    }
    for (key in seen_count) {
        if (!(key in seen_bucket))
            { printf "validate_prometheus: %s has _count but no buckets\n", key; exit 1 }
    }
}
' "${1:--}"
