#!/usr/bin/env bash
# Diff the last two dated trajectory entries of the checked-in bench
# journals (BENCH_chains.json, BENCH_serve.json) and flag per-benchmark
# mean_ns regressions beyond a threshold (default 20%, override with
# BENCH_DIFF_THRESHOLD_PCT).  Exits 1 if any benchmark regressed; CI runs
# it as an advisory step because bench history is appended from whatever
# machine the author benched on, so cross-entry deltas carry machine noise.
#
# Usage: scripts/bench_diff.sh [FILE...]
#   With no arguments, diffs both journals in the repo root.  A file with
#   fewer than two dated entries (or none at all) is reported and skipped.
set -eu

cd "$(dirname "$0")/.."
THRESHOLD_PCT=${BENCH_DIFF_THRESHOLD_PCT:-20}
if [ $# -gt 0 ]; then FILES=("$@"); else FILES=(BENCH_chains.json BENCH_serve.json); fi

FAILED=0
for file in "${FILES[@]}"; do
    if [ ! -f "$file" ]; then
        echo "$file: missing, skipped"
        continue
    fi
    dated=$(jq '[.[] | select(type == "object" and has("date"))] | length' "$file")
    if [ "$dated" -lt 2 ]; then
        echo "$file: $dated dated entry/entries, nothing to diff"
        continue
    fi
    jq -r '[.[] | select(type == "object" and has("date"))][-2:]
           | "== \(input_filename): \(.[0].date) -> \(.[1].date) =="' "$file"
    rows=$(jq -r --argjson pct "$THRESHOLD_PCT" '
        [.[] | select(type == "object" and has("date"))][-2:] as $pair
        | ($pair[0].results | map({key: .name, value: .mean_ns}) | from_entries) as $base
        | $pair[1].results[]
        | select($base[.name] != null)
        | (100 * (.mean_ns - $base[.name]) / $base[.name]) as $delta
        | [(if $delta > $pct then "REGRESSION" else "ok" end),
           .name, ($base[.name] | tostring), (.mean_ns | tostring),
           ((($delta * 10 | round) / 10 | tostring) + "%")]
        | join("\t")' "$file")
    printf 'verdict\tname\tprev_mean_ns\tcurr_mean_ns\tdelta\n%s\n' "$rows" \
        | column -t -s "$(printf '\t')" 2>/dev/null \
        || printf 'verdict\tname\tprev_mean_ns\tcurr_mean_ns\tdelta\n%s\n' "$rows"
    # Benchmarks present in only one of the two entries can't be compared;
    # name them so a silently dropped benchmark doesn't read as "no change".
    jq -r '[.[] | select(type == "object" and has("date"))][-2:]
           | (.[0].results | map(.name)) as $prev
           | (.[1].results | map(.name)) as $curr
           | ((($curr - $prev) | map("  only in newest: " + .)[]),
              (($prev - $curr) | map("  only in previous: " + .)[]))' "$file"
    if printf '%s\n' "$rows" | grep -q '^REGRESSION'; then
        FAILED=1
    fi
done

if [ "$FAILED" -ne 0 ]; then
    echo "bench_diff: mean_ns regression(s) beyond ${THRESHOLD_PCT}% flagged above" >&2
    exit 1
fi
echo "bench_diff: no mean_ns regression beyond ${THRESHOLD_PCT}%"
