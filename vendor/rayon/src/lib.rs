//! Offline stand-in for the subset of `rayon` used by this workspace.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! parallel-iterator surface the workspace needs on top of plain
//! `std::thread::scope`: each terminal operation splits its input into one
//! contiguous chunk per worker, spawns scoped threads, and reassembles the
//! results in order.  That preserves rayon's observable semantics for this
//! codebase — ordered `collect`, concurrent `for_each`, per-worker
//! `current_thread_index` — without work stealing.
//!
//! Differences from real rayon, by design:
//!
//! * adapters (`map`, `filter_map`, …) evaluate eagerly, each as its own
//!   parallel pass, instead of fusing into one;
//! * `ThreadPool` is only a thread-count override (`install` runs its closure
//!   on the calling thread with the override active);
//! * `build_global` always succeeds and simply stores the requested count.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count default, 0 = uninitialised (use hardware parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Worker index inside a parallel region, `None` outside.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Per-thread override installed by [`ThreadPool::install`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|c| c.get()) {
        return n;
    }
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => hardware_threads(),
        n => n,
    }
}

/// Index of the current worker within its parallel region, if any.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|c| c.get())
}

/// Error type of [`ThreadPoolBuilder`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `num` worker threads; 0 means "hardware default".
    pub fn num_threads(mut self, num: usize) -> Self {
        self.num_threads = num;
        self
    }

    /// Install the requested count as the global default.
    ///
    /// Unlike rayon this may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }

    /// Build a scoped pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { hardware_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A thread-count scope mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count as the ambient parallelism.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        let result = op();
        THREAD_OVERRIDE.with(|c| c.set(previous));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Split `items` into at most `parts` contiguous chunks of near-equal size.
fn split_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut chunks = Vec::with_capacity(parts);
    // Take from the back to avoid shifting; reverse afterwards.
    for i in (0..parts).rev() {
        let size = base + usize::from(i < extra);
        chunks.push(items.split_off(items.len() - size));
    }
    chunks.reverse();
    chunks
}

/// Run `f` over per-worker chunks of `items`, in parallel, returning the
/// per-chunk results in chunk order.
fn run_chunked<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(Vec<T>) -> U + Sync,
{
    let workers = current_num_threads();
    if workers <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunks = split_chunks(items, workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(index, chunk)| {
                scope.spawn(move || {
                    WORKER_INDEX.with(|c| c.set(Some(index)));
                    let out = f(chunk);
                    WORKER_INDEX.with(|c| c.set(None));
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// An eagerly evaluated parallel iterator over an in-memory sequence.
///
/// This is both the `ParallelIterator` and the `IndexedParallelIterator` of
/// the shim: all sources are materialised, so every pipeline is indexed.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        let nested = run_chunked(self.items, |chunk| chunk.into_iter().map(&f).collect::<Vec<_>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Apply `f` in parallel, keeping the `Some` results in order.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync + Send,
    {
        let nested =
            run_chunked(self.items, |chunk| chunk.into_iter().filter_map(&f).collect::<Vec<_>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Keep items satisfying `f`, in order.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        let nested =
            run_chunked(self.items, |chunk| chunk.into_iter().filter(&f).collect::<Vec<_>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        run_chunked(self.items, |chunk| chunk.into_iter().for_each(&f));
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Group items into consecutive chunks of at most `size` elements.
    pub fn chunks(self, size: usize) -> ParIter<Vec<T>> {
        assert!(size > 0, "chunk size must be positive");
        let mut groups = Vec::with_capacity(self.items.len().div_ceil(size));
        let mut iter = self.items.into_iter();
        loop {
            let group: Vec<T> = iter.by_ref().take(size).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }
        ParIter { items: groups }
    }

    /// Map each item to a serial iterator and concatenate the results in
    /// order (`rayon::iter::ParallelIterator::flat_map_iter`).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync + Send,
    {
        let nested =
            run_chunked(self.items, |chunk| chunk.into_iter().flat_map(&f).collect::<Vec<_>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Sum all items (partial sums per worker, then a final fold).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        run_chunked(self.items, |chunk| chunk.into_iter().sum::<S>()).into_iter().sum()
    }

    /// Number of items.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Gather the items into a collection, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Reduce with an identity and an associative operator.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        let partials = run_chunked(self.items, |chunk| chunk.into_iter().fold(identity(), &op));
        partials.into_iter().fold(identity(), op)
    }
}

impl<T: Copy + Send + Sync> ParIter<&T> {
    /// Copy the referenced items (`rayon`'s `copied`).
    pub fn copied(self) -> ParIter<T> {
        ParIter { items: self.items.into_iter().copied().collect() }
    }
}

impl<T: Clone + Send + Sync> ParIter<&T> {
    /// Clone the referenced items (`rayon`'s `cloned`).
    pub fn cloned(self) -> ParIter<T> {
        ParIter { items: self.items.into_iter().cloned().collect() }
    }
}

/// Conversion into a parallel iterator (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Convert `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u8, u16, u32, u64, usize, i32, i64);

/// Borrowing conversion (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterate over references to `self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Re-export of the iterator types under their rayon module path.
pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn for_each_runs_on_multiple_workers() {
        let hits = AtomicUsize::new(0);
        (0..50_000u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50_000);
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<u32> =
            (0..1000u32).into_par_iter().filter_map(|x| (x % 3 == 0).then_some(x)).collect();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v.len(), 334);
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0..=1000u64).into_par_iter().sum();
        assert_eq!(s, 500_500);
        let m = (1..=100u64).into_par_iter().reduce(|| 1, |a, b| a.max(b));
        assert_eq!(m, 100);
    }

    #[test]
    fn chunks_then_flat_map_iter_roundtrips() {
        let v: Vec<usize> =
            (0..1234usize).into_par_iter().chunks(100).flat_map_iter(|c| c.into_iter()).collect();
        assert_eq!(v, (0..1234).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: u64 = data.par_iter().copied().sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn worker_indices_are_in_range() {
        let workers = crate::current_num_threads();
        (0..10_000u32).into_par_iter().for_each(|_| {
            if let Some(i) = crate::current_thread_index() {
                assert!(i < workers.max(1));
            }
        });
    }
}
