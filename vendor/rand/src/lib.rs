//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! minimal, API-compatible implementations of its external dependencies (see
//! the top-level README).  This crate provides:
//!
//! * [`RngCore`] — the raw generator interface (`next_u32` / `next_u64` /
//!   `fill_bytes`);
//! * [`Rng`] — the blanket extension trait with `gen`, `gen_bool` and
//!   `gen_range`;
//! * [`distributions::Distribution`] — the sampling interface implemented by
//!   `rand_distr`.
//!
//! Only the APIs exercised by the workspace are implemented; swapping in the
//! real `rand` crate once a registry is reachable is a manifest-only change.

#![forbid(unsafe_code)]

/// Raw interface of a random number generator (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values that can be drawn uniformly from a generator's raw bits (the role
/// of `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (as in `rand`).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, bound)` (Lemire's multiply-shift with
/// rejection); `bound` must be non-zero.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound {
            return (m >> 64) as u64;
        }
        // `low < bound`: reject the draw iff it falls in the biased zone.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience extension methods over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::standard_sample(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sampling distributions (mirrors `rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..5usize);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Counter(99);
        let mut counts = [0u32; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        let expected = trials as f64 / 8.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
