//! Offline stand-in for the subset of `parking_lot` used by this workspace.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: `lock()`
//! returns the guard directly, recovering from poisoning (parking_lot has no
//! poisoning; a panicking critical section leaves the data as-is, which is
//! exactly what `into_inner` on a poison error yields).

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
