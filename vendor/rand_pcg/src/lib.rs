//! Offline stand-in for `rand_pcg`: the PCG XSL RR 128/64 generator
//! (`Pcg64`), the workspace's default PRNG.
//!
//! Implements the reference PCG construction (O'Neill 2014): a 128-bit LCG
//! state advanced with the canonical multiplier, output by xor-folding the
//! high and low halves and rotating by the top 7 bits.

#![forbid(unsafe_code)]

use rand::RngCore;

/// The canonical 128-bit PCG multiplier.
const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// A PCG XSL RR 128/64 random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Create a generator from a 128-bit state and stream selector.
    ///
    /// Mirrors `rand_pcg::Pcg64::new`: the stream selector is shifted left by
    /// one and forced odd, so any `u128` selects a valid stream.
    pub fn new(state: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut pcg = Self { state: state.wrapping_add(increment), increment };
        pcg.step();
        pcg
    }

    /// Expose the raw generator state `(state, increment)`.
    ///
    /// Together with [`Pcg64::from_raw_parts`] this allows the exact stream
    /// position to be captured and later resumed bit-identically, which the
    /// checkpointing layer of the workspace relies on.  The real `rand_pcg`
    /// crate offers the same capability through its serde feature; the raw
    /// accessor keeps the vendored shim dependency-free.
    pub fn to_raw_parts(&self) -> (u128, u128) {
        (self.state, self.increment)
    }

    /// Rebuild a generator from raw parts captured by [`Pcg64::to_raw_parts`].
    ///
    /// Unlike [`Pcg64::new`] this performs no seeding transformation: the next
    /// output of the restored generator is exactly the next output the
    /// captured generator would have produced.
    pub fn from_raw_parts(state: u128, increment: u128) -> Self {
        Self { state, increment }
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.increment);
    }

    #[inline]
    fn output(state: u128) -> u64 {
        // XSL RR: xor the halves, rotate by the top 7 bits of the state.
        let rot = (state >> 122) as u32;
        let xsl = ((state >> 64) as u64) ^ (state as u64);
        xsl.rotate_right(rot)
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        Self::output(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_stream_dependent() {
        let mut a = Pcg64::new(42, 54);
        let mut b = Pcg64::new(42, 54);
        let mut c = Pcg64::new(42, 55);
        let mut same_stream = 0;
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x == c.next_u64() {
                same_stream += 1;
            }
        }
        assert!(same_stream < 4, "distinct streams should diverge");
    }

    #[test]
    fn raw_parts_roundtrip_resumes_the_stream() {
        let mut rng = Pcg64::new(3, 17);
        for _ in 0..10 {
            rng.next_u64();
        }
        let (state, increment) = rng.to_raw_parts();
        let mut resumed = Pcg64::from_raw_parts(state, increment);
        for _ in 0..32 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = Pcg64::new(7, 11);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let expected = 1024 * 32;
        assert!((ones as i64 - expected as i64).abs() < 2_000, "ones = {ones}");
    }
}
