//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Implements the group/bench API (`benchmark_group`, `bench_with_input`,
//! `iter`, `iter_batched`, `criterion_group!`, `criterion_main!`) as a small
//! wall-clock harness: every benchmark runs `sample_size` timed samples and
//! reports min / mean / max to stdout.  There is no warm-up, outlier
//! rejection, or statistical analysis — the goal is that `cargo bench`
//! compiles, runs, and produces usable relative numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark, collected for the optional JSON report.
#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
    &RESULTS
}

/// Write every benchmark result recorded so far as a JSON array to the path
/// in `$GESMC_BENCH_JSON` (no-op when the variable is unset).  Called by
/// `criterion_main!` after all groups ran, so
/// `GESMC_BENCH_JSON=BENCH_foo.json cargo bench --bench foo` checks in a
/// machine-readable baseline alongside the stdout report.
pub fn write_json_report() {
    let Ok(path) = std::env::var("GESMC_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let mut results = results().lock().expect("bench results mutex poisoned").clone();
    results.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        // Names come from benchmark ids; escape the JSON specials anyway.
        let name: String = r
            .name
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if c.is_control() => vec![' '],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"samples\": {}}}{}\n",
            name, r.mean_ns, r.min_ns, r.max_ns, r.samples, comma
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Measurement types (mirrors `criterion::measurement`).
pub mod measurement {
    /// Wall-clock time, the only measurement the shim supports.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How `iter_batched` amortises setup cost; the shim always runs one batch
/// per sample, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one batch per sample).
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Throughput annotation attached to a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Build an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup is not timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the group's throughput (reported per sample).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: self.effective_samples(), durations: Vec::new() };
        f(&mut bencher, input);
        self.report(&id.id, &bencher.durations);
        self
    }

    /// Benchmark `f` without an input parameter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: self.effective_samples(), durations: Vec::new() };
        f(&mut bencher);
        self.report(&id.id, &bencher.durations);
        self
    }

    /// Finish the group (stdout reporting happens per benchmark).
    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        self.sample_size.min(self.criterion.max_samples)
    }

    fn report(&self, id: &str, durations: &[Duration]) {
        if durations.is_empty() {
            return;
        }
        let total: Duration = durations.iter().sum();
        let mean = total / durations.len() as u32;
        let min = durations.iter().min().copied().unwrap_or_default();
        let max = durations.iter().max().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {:?}  (min {:?}, max {:?}, {} samples){}",
            self.name,
            id,
            mean,
            min,
            max,
            durations.len(),
            rate
        );
        results().lock().expect("bench results mutex poisoned").push(BenchResult {
            name: format!("{}/{}", self.name, id),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: durations.len(),
        });
    }
}

/// Benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline bench runs short; CRITERION_MAX_SAMPLES overrides.
        let max_samples =
            std::env::var("CRITERION_MAX_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Self { max_samples }
    }
}

impl Criterion {
    /// Accept (and ignore) criterion CLI arguments such as `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.max_samples,
            throughput: None,
            criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function(BenchmarkId::from_parameter("run"), f);
        self
    }
}

/// Declare a benchmark group function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main` (mirrors `criterion::criterion_main!`).
/// After all groups ran, the shim writes the machine-readable report if
/// `$GESMC_BENCH_JSON` names a path (see [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { max_samples: 3 };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).throughput(Throughput::Elements(100));
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("count", 7), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // sample_size(5) clamped by max_samples = 3.
        assert_eq!(runs, 3);
    }

    #[test]
    fn report_records_results_for_the_json_report() {
        let mut c = Criterion { max_samples: 2 };
        let mut group = c.benchmark_group("jsoncheck");
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| 1 + 1));
        group.finish();
        let recorded = results().lock().unwrap();
        assert!(
            recorded.iter().any(|r| r.name == "jsoncheck/noop" && r.samples == 2),
            "report() must record results for write_json_report"
        );
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion { max_samples: 2 };
        let mut group = c.benchmark_group("batched");
        let mut setups = 0;
        group.bench_function(BenchmarkId::from_parameter("b"), |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 2);
    }
}
