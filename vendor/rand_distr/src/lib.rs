//! Offline stand-in for the subset of `rand_distr` used by this workspace:
//! the [`Binomial`] distribution.
//!
//! Sampling strategy: exact inversion (the classic BINV algorithm) whenever
//! `n * min(p, 1-p)` is small enough for `(1-p)^n` not to underflow, and a
//! clamped normal approximation otherwise.  The chains draw
//! `Binom(⌊m/2⌋, 1 − P_L)` with tiny `P_L`, which lands in the exact branch
//! for every test-scale instance; the approximation only kicks in at
//! benchmark scale, where the relative error of the normal regime is far
//! below measurement noise.

#![forbid(unsafe_code)]

use rand::{Rng as _, RngCore};

pub use rand::distributions::Distribution;

/// Error returned by [`Binomial::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinomialError;

impl core::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "binomial parameters invalid: p must be finite and in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// The binomial distribution `Binom(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Construct `Binom(n, p)`; fails if `p` is not a probability.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(BinomialError);
        }
        Ok(Self { n, p })
    }
}

/// Largest `n * min(p, q)` for which the exact inversion sampler is used;
/// beyond it `q^n` risks underflow and the walk gets long.
const INVERSION_LIMIT: f64 = 500.0;

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p == 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        // Sample the rarer outcome for a short inversion walk.
        let flipped = self.p > 0.5;
        let p = if flipped { 1.0 - self.p } else { self.p };
        let successes = if self.n as f64 * p <= INVERSION_LIMIT {
            sample_inversion(rng, self.n, p)
        } else {
            sample_normal_approx(rng, self.n, p)
        };
        if flipped {
            self.n - successes
        } else {
            successes
        }
    }
}

/// Exact BINV inversion: walk the CDF from 0 upward.  Expected work is
/// `O(n p)`; requires `(1-p)^n` to be representable.
fn sample_inversion<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let base = q.powf(n as f64);
    debug_assert!(base > 0.0, "inversion branch requires (1-p)^n > 0");
    'redraw: loop {
        let mut pmf = base;
        let mut cdf = pmf;
        let u: f64 = rng.gen();
        let mut k = 0u64;
        while u > cdf {
            k += 1;
            if k > n {
                // `u` landed in the numerical tail lost to rounding; redraw.
                continue 'redraw;
            }
            pmf *= s * (n - k + 1) as f64 / k as f64;
            cdf += pmf;
        }
        return k;
    }
}

/// Normal approximation with continuity correction, clamped to `[0, n]`.
fn sample_normal_approx<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box-Muller transform.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
    let x = (mean + sd * z + 0.5).floor();
    x.clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
        assert!(Binomial::new(10, 0.3).is_ok());
    }

    #[test]
    fn inversion_matches_moments() {
        let mut rng = Lcg(3);
        let dist = Binomial::new(40, 0.25).unwrap();
        let reps = 40_000;
        let samples: Vec<u64> = (0..reps).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / reps as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        let var = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / reps as f64;
        assert!((var - 7.5).abs() < 0.8, "variance {var}");
        assert!(samples.iter().all(|&x| x <= 40));
    }

    #[test]
    fn normal_branch_matches_moments() {
        let mut rng = Lcg(9);
        // n * p well beyond the inversion limit.
        let dist = Binomial::new(1_000_000, 0.5).unwrap();
        let reps = 4_000;
        let samples: Vec<u64> = (0..reps).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / reps as f64;
        assert!((mean - 500_000.0).abs() < 100.0, "mean {mean}");
    }
}
