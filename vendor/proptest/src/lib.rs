//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Supports the `proptest! { #[test] fn f(x in strategy, ..) { .. } }` macro,
//! `any::<T>()`, integer-range strategies, `proptest::collection::vec`, and
//! the `prop_assert*` macros.  Each property runs a fixed number of
//! deterministic cases (seeded by the case index), so failures are
//! reproducible; there is no shrinking — the failing case's seed is part of
//! the panic message via the generated values themselves.

#![forbid(unsafe_code)]

/// Deterministic splitmix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case`.
    pub fn new(case: u64) -> Self {
        Self { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the tiny bias is irrelevant for test-case generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A generator of test values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i32, i64);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::generate(&self.len, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Define property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::TestRng::new(__case);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Property assertion (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (plain `assert_eq!` without shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (plain `assert_ne!` without shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// What `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            let _ = z;
        }

        #[test]
        fn vec_strategy_respects_length(mut v in crate::collection::vec(any::<u32>(), 0..20)) {
            prop_assert!(v.len() < 20);
            v.push(1);
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4).map(|c| crate::TestRng::new(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| crate::TestRng::new(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
