//! Offline stand-in for the subset of `serde_json` used by this workspace:
//! the [`Value`] tree, an insertion-ordered [`Map`], and
//! [`to_string_pretty`].
//!
//! Serialisation is structural (a [`Serialize`] trait converting into
//! [`Value`]) rather than serde-derive based, because proc-macro crates
//! cannot be vendored compactly.  Code that only builds `Value`s — as the
//! benchmark writer does — is source-compatible with the real crate.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// Serialisation error (never produced by the shim, present for API parity).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialisation failed")
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// An insertion-ordered string-keyed map of JSON values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Append or replace `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (stored as f64, like serde_json's lossy mode).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

/// Structural serialisation into a [`Value`] (the shim's stand-in for
/// serde's `Serialize`).
pub trait Serialize {
    /// Convert to a JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    const STEP: usize = 2;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_value(out, item, indent + STEP);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let len = map.len();
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, v, indent + STEP);
                if i + 1 < len {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-print `value` as JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Compact JSON serialisation.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The pretty printer is the only formatter; strip is not worth the code.
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_objects_in_insertion_order() {
        let map: Map<String, Value> = [
            ("b".to_string(), Value::String("x\"y".into())),
            ("a".to_string(), Value::Number(3.0)),
        ]
        .into_iter()
        .collect();
        let rows = vec![Value::Object(map)];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.contains("\"b\": \"x\\\"y\""));
        assert!(s.contains("\"a\": 3"));
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(Map::new())).unwrap(), "{}");
    }
}
