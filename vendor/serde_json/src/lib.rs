//! Offline stand-in for the subset of `serde_json` used by this workspace:
//! the [`Value`] tree, an insertion-ordered [`Map`], [`to_string_pretty`],
//! and a [`from_str`] parser into [`Value`].
//!
//! Serialisation is structural (a [`Serialize`] trait converting into
//! [`Value`]) rather than serde-derive based, because proc-macro crates
//! cannot be vendored compactly.  Code that only builds `Value`s — as the
//! benchmark writer does — or parses into `Value` — as the engine's manifest
//! reader does — is source-compatible with the real crate.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// Serialisation or parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// An insertion-ordered string-keyed map of JSON values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Append or replace `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate the keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (stored as f64, like serde_json's lossy mode).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// Index into an object by key (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8446744e19 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 9.223372e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Structural serialisation into a [`Value`] (the shim's stand-in for
/// serde's `Serialize`).
pub trait Serialize {
    /// Convert to a JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    const STEP: usize = 2;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_value(out, item, indent + STEP);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let len = map.len();
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, v, indent + STEP);
                if i + 1 < len {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Recursive-descent JSON parser over a char buffer.
struct Parser<'a> {
    chars: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self { chars: input.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.chars[..self.pos.min(self.chars.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        self.skip_whitespace();
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(&format!("expected {:?}", byte as char)))
            }
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.chars[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected {literal:?}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.chars.len() {
                            return Err(self.error("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.chars[self.pos..self.pos + 4])
                            .map_err(|_| self.error("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.error("invalid \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not needed for manifests; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes are
                    // valid; find the sequence length from the leading byte.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.chars.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.chars[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.chars[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| {
            self.pos = start;
            self.error(&format!("invalid number {text:?}"))
        })?;
        // The shim's Number is f64-backed, which represents integers exactly
        // only below 2^53.  Seeds and counters must never be silently
        // rounded, so reject integer literals outside that range loudly
        // instead of mimicking real serde_json's exact u64/i64 handling.
        if !text.contains(['.', 'e', 'E']) && n.abs() >= 9_007_199_254_740_992.0 {
            self.pos = start;
            return Err(self.error(&format!(
                "integer {text} exceeds the exactly representable range (|x| < 2^53) \
                 of this build's f64-backed numbers"
            )));
        }
        Ok(Value::Number(n))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(items)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.error("expected ',' or ']' in array"));
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_whitespace();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(map)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.error("expected ',' or '}' in object"));
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(&format!("unexpected character {:?}", b as char))),
        }
    }
}

/// Parse a JSON document into a [`Value`].
///
/// Mirrors `serde_json::from_str::<Value>`; errors carry line/column
/// positions.  Trailing non-whitespace input is rejected.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.peek().is_some() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Pretty-print `value` as JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Compact JSON serialisation.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The pretty printer is the only formatter; strip is not worth the code.
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_objects_in_insertion_order() {
        let map: Map<String, Value> = [
            ("b".to_string(), Value::String("x\"y".into())),
            ("a".to_string(), Value::Number(3.0)),
        ]
        .into_iter()
        .collect();
        let rows = vec![Value::Object(map)];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.contains("\"b\": \"x\\\"y\""));
        assert!(s.contains("\"a\": 3"));
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(Map::new())).unwrap(), "{}");
    }

    #[test]
    fn parses_nested_documents() {
        let v = from_str(
            r#"{
                "name": "batch",
                "workers": 4,
                "ratio": -2.5e-1,
                "flag": true,
                "nothing": null,
                "jobs": [{"seed": 1}, {"seed": 2}],
                "esc": "a\"b\\c\ndA"
            }"#,
        )
        .unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("batch"));
        assert_eq!(v.get("workers").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("ratio").and_then(Value::as_f64), Some(-0.25));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert!(v.get("nothing").is_some_and(Value::is_null));
        let jobs = v.get("jobs").and_then(Value::as_array).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].get("seed").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("esc").and_then(Value::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parse_roundtrips_through_the_printer() {
        let original = from_str(r#"{"a": [1, 2, {"b": "x"}], "c": false}"#).unwrap();
        let printed = to_string_pretty(&original).unwrap();
        assert_eq!(from_str(&printed).unwrap(), original);
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = from_str("{\n  \"a\": tru\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "unhelpful message: {msg}");
        assert!(from_str("").is_err());
        assert!(from_str("{}, extra").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = from_str(r#"{"n": 1.5, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), None);
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Value::as_u64), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("anything"), None);
    }

    #[test]
    fn rejects_integers_that_would_round() {
        // 2^53 - 1 is exact; 2^53 + 1 would silently round to 2^53.
        let v = from_str("9007199254740991").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740991));
        let err = from_str("9007199254740993").unwrap_err();
        assert!(err.to_string().contains("2^53"), "{err}");
        assert!(from_str("-9007199254740993").is_err());
        // Floats and exponent forms stay in lossy mode, as documented.
        assert!(from_str("1.8e19").is_ok());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = from_str(r#"["héllo ☃", "π"]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("héllo ☃"));
        assert_eq!(items[1].as_str(), Some("π"));
    }
}
