//! # gesmc — Parallel Global Edge Switching for the Uniform Sampling of
//! Simple Graphs with Prescribed Degrees
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of the individual crates so that applications (and the bundled examples)
//! only need a single dependency.
//!
//! * [`graph`] — graphs, degree sequences, generators, metrics, I/O;
//! * [`chains`] — the switching Markov chains (`SeqES`, `SeqGlobalES`,
//!   `ParES`, `ParGlobalES`, `NaiveParES`), their shared interface, and the
//!   open `ChainSpec`/`ChainRegistry` algorithm API;
//! * [`baselines`] — adjacency-list ES-MC baselines and Global Curveball,
//!   registered alongside the core chains in the engine's default registry;
//! * [`analysis`] — autocorrelation-based mixing-time analysis and proxies;
//! * [`datasets`] — the SynGnp / SynPld / NetRep-like dataset families;
//! * [`concurrent`] — the concurrent hash sets and dependency tables;
//! * [`exmem`] — out-of-core edge storage: a dependency-free mmap wrapper,
//!   the zero-copy `MappedEdgeList` view, the disk-backed
//!   `ExternalEdgeStore`, and the `seq-es-ext` chain (bit-identical to
//!   `seq-es`; `gesmc randomize --mmap` on the command line);
//! * [`randx`] — randomness utilities (bounded sampling, permutations);
//! * [`engine`] — the batched randomization job engine: job queue + worker
//!   pool, streaming thinned-sample sinks, binary checkpoint/resume, and the
//!   long-running service pool with cancellation and graceful shutdown;
//! * [`serve`] — the HTTP sampling service (`gesmc serve`): hand-rolled
//!   `std::net` server, warm LRU sample cache, bounded admission with load
//!   shedding, Prometheus metrics;
//! * [`cluster`] — consistent-hash ring primitives shared by the sharded
//!   serving mode and the client: FNV-1a/mix64 hashing, virtual-node rings,
//!   canonical cache keys, and a dependency-free blocking HTTP/1.1 client;
//! * [`client`] — the typed SDK for the service: multi-endpoint pool with
//!   ring-based routing, failover, and `Retry-After`-aware backoff;
//! * [`obs`] — dependency-free observability: structured leveled logging
//!   with per-request correlation ids, fixed-bucket latency histograms with
//!   lock-cheap sharded recording, and Prometheus/JSON rendering;
//! * [`study`] — end-to-end mixing-time experiments (Figs. 2-3): sweep
//!   specs, streaming metric sinks, deterministic JSON/CSV reports.
//!
//! ## Quick start
//!
//! ```
//! use gesmc::prelude::*;
//!
//! // Build a power-law graph with 1000 nodes and exponent 2.5 ...
//! let graph = gesmc::datasets::syn_pld_graph(42, 1000, 2.5);
//! let degrees = graph.degrees();
//!
//! // ... and replace it by an approximately uniform sample with the same
//! // degrees using the exact parallel G-ES-MC chain.
//! let mut chain = ParGlobalES::new(graph, SwitchingConfig::with_seed(42));
//! chain.run_supersteps(20);
//! let sample = chain.graph();
//!
//! assert_eq!(sample.degrees(), degrees);
//! assert!(sample.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gesmc_analysis as analysis;
pub use gesmc_baselines as baselines;
pub use gesmc_client as client;
pub use gesmc_cluster as cluster;
pub use gesmc_concurrent as concurrent;
pub use gesmc_core as chains;
pub use gesmc_datasets as datasets;
pub use gesmc_engine as engine;
pub use gesmc_exmem as exmem;
pub use gesmc_graph as graph;
pub use gesmc_obs as obs;
pub use gesmc_randx as randx;
pub use gesmc_serve as serve;
pub use gesmc_study as study;

/// The most commonly used items in one import.
pub mod prelude {
    pub use gesmc_analysis::{mixing_profile, MixingProfile};
    pub use gesmc_baselines::{
        register_baselines, AdjacencyListES, GlobalCurveball, SortedAdjacencyES,
    };
    pub use gesmc_client::{Client, ClientError, Sample, SampleSpec};
    pub use gesmc_cluster::{canonical_graph_spec, HashRing, SampleKey};
    pub use gesmc_core::{
        ChainError, ChainInfo, ChainRegistry, ChainSnapshot, ChainSpec, EdgeSwitching, NaiveParES,
        ParES, ParGlobalES, ParamValue, SeqES, SeqGlobalES, SwitchingConfig,
    };
    pub use gesmc_engine::{
        default_registry, run_batch, run_job, run_job_hooked, run_job_with, Checkpoint,
        CheckpointSink, GraphSource, JobControl, JobHandle, JobSpec, JobState, Manifest,
        MemorySink, SampleSink, ServicePool, WorkerPool,
    };
    pub use gesmc_exmem::{ExternalEdgeStore, MappedEdgeList, SeqESExt};
    pub use gesmc_graph::{DegreeSequence, Edge, EdgeListGraph, EdgeStore};
    pub use gesmc_serve::{ClusterConfig, PersistIo, ServeConfig, Server, StdFs};
    pub use gesmc_study::{run_study, MetricsSink, StudyOptions, StudyReport, StudySpec};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let graph = crate::datasets::syn_gnp_graph(1, 200, 800);
        let degrees = graph.degrees();
        let mut chain = SeqGlobalES::new(graph, SwitchingConfig::with_seed(1));
        chain.run_supersteps(3);
        assert_eq!(chain.graph().degrees(), degrees);
    }
}
